#include "sram/netlist_builder.h"

#include <string>

#include "util/contracts.h"

namespace mpsram::sram {

namespace {

std::string idx_name(const char* base, int i)
{
    return std::string(base) + std::to_string(i);
}

void validate_column_inputs(const Array_config& cfg,
                            const Bitline_electrical& wires,
                            const Netlist_options& nopts)
{
    util::expects(cfg.word_lines > 0, "array needs word lines");
    util::expects(wires.r_bl_cell > 0.0 && wires.c_bl_cell > 0.0,
                  "bit-line parasitics must be extracted first");
    util::expects(nopts.vss_strap_interval >= 0,
                  "strap interval must be non-negative");
    util::expects(nopts.vss_rail_sharing >= 1.0,
                  "rail sharing factor must be >= 1");
}

/// Handles of the accessed (far-end) cell of a built substrate.
struct Accessed_cell {
    spice::Node q = 0;
    spice::Node qb = 0;
    spice::Node bl_far = 0;
    spice::Node blb_far = 0;
};

/// The column substrate shared by the read and write netlists: n per-cell
/// wire-ladder segments (handles retained in `ladder`) and n 6T cells,
/// chained from the near-end heads.  Only the last row's word line is
/// driven (`wl`); all other pass gates are held off by grounding their
/// gates.  Every cell is initialized storing 0 on the BL side.
Accessed_cell build_column_substrate(spice::Circuit& c,
                                     const Cell_electrical& cell,
                                     const Bitline_electrical& wires,
                                     int n, double vdd,
                                     const Netlist_options& nopts,
                                     spice::Node bl_head,
                                     spice::Node blb_head, spice::Node wl,
                                     spice::Node vdd_n, spice::Dc_options& dc,
                                     Column_ladder& ladder)
{
    Accessed_cell accessed_cell;
    spice::Node bl_prev = bl_head;
    spice::Node blb_prev = blb_head;
    spice::Node vss_prev = spice::ground_node;  // rail tap at the near end

    for (int i = 0; i < n; ++i) {
        const spice::Node bl_i = c.node(idx_name("bl", i));
        const spice::Node blb_i = c.node(idx_name("blb", i));
        const spice::Node vss_i = c.node(idx_name("vss", i));
        const spice::Node q_i = c.node(idx_name("q", i));
        const spice::Node qb_i = c.node(idx_name("qb", i));

        // Wire ladder segments (handles retained for wire-value updates).
        ladder.r_bl.push_back(&c.add_resistor(idx_name("Rbl", i), bl_prev,
                                              bl_i, wires.r_bl_cell));
        ladder.r_blb.push_back(&c.add_resistor(idx_name("Rblb", i), blb_prev,
                                               blb_i, wires.r_blb_cell));
        ladder.r_vss.push_back(
            &c.add_resistor(idx_name("Rvss", i), vss_prev, vss_i,
                            wires.r_vss_cell / nopts.vss_rail_sharing));

        // Optional periodic VSS strap into the vertical power grid.
        if (nopts.vss_strap_interval > 0 &&
            (i + 1) % nopts.vss_strap_interval == 0) {
            c.add_resistor(idx_name("Rstrap", i), vss_i, spice::ground_node,
                           nopts.vss_strap_resistance);
        }

        // Wire capacitance (coupling to static rails folded to ground).
        ladder.c_bl.push_back(&c.add_capacitor(
            idx_name("Cbl", i), bl_i, spice::ground_node, wires.c_bl_cell));
        ladder.c_blb.push_back(
            &c.add_capacitor(idx_name("Cblb", i), blb_i, spice::ground_node,
                             wires.c_blb_cell));
        ladder.c_vss.push_back(
            &c.add_capacitor(idx_name("Cvss", i), vss_i, spice::ground_node,
                             wires.c_vss_cell));

        // Pass-gate junction load on the bit lines (the per-cell CFE).
        c.add_capacitor(idx_name("Cfe_bl", i), bl_i, spice::ground_node,
                        cell.bitline_junction_cap());
        c.add_capacitor(idx_name("Cfe_blb", i), blb_i, spice::ground_node,
                        cell.bitline_junction_cap());

        // The 6T cell.
        const bool accessed = (i == n - 1);
        const spice::Node wl_i = accessed ? wl : spice::ground_node;

        c.add_mosfet(idx_name("Mpu_q", i), q_i, qb_i, vdd_n, cell.pull_up,
                     cell.m_pull_up);
        c.add_mosfet(idx_name("Mpd_q", i), q_i, qb_i, vss_i, cell.pull_down,
                     cell.m_pull_down);
        c.add_mosfet(idx_name("Mpu_qb", i), qb_i, q_i, vdd_n, cell.pull_up,
                     cell.m_pull_up);
        c.add_mosfet(idx_name("Mpd_qb", i), qb_i, q_i, vss_i, cell.pull_down,
                     cell.m_pull_down);
        c.add_mosfet(idx_name("Mpg_bl", i), bl_i, wl_i, q_i, cell.pass_gate,
                     cell.m_pass_gate);
        c.add_mosfet(idx_name("Mpg_blb", i), blb_i, wl_i, qb_i,
                     cell.pass_gate, cell.m_pass_gate);

        // Storage-node capacitance.
        c.add_capacitor(idx_name("Cq", i), q_i, spice::ground_node,
                        cell.storage_node_cap());
        c.add_capacitor(idx_name("Cqb", i), qb_i, spice::ground_node,
                        cell.storage_node_cap());

        // Latch initialization: every cell stores 0 on the BL side, so the
        // accessed read discharges BL and the accessed write flips q up.
        dc.forces.push_back({q_i, 0.0, 1.0});
        dc.forces.push_back({qb_i, vdd, 1.0});
        dc.initial_guesses.emplace_back(bl_i, vdd);
        dc.initial_guesses.emplace_back(blb_i, vdd);
        dc.initial_guesses.emplace_back(vss_i, 0.0);

        if (accessed) {
            accessed_cell.q = q_i;
            accessed_cell.qb = qb_i;
            accessed_cell.bl_far = bl_i;
            accessed_cell.blb_far = blb_i;
        }

        bl_prev = bl_i;
        blb_prev = blb_i;
        vss_prev = vss_i;
    }

    dc.initial_guesses.emplace_back(bl_head, vdd);
    dc.initial_guesses.emplace_back(blb_head, vdd);
    return accessed_cell;
}

void update_column_ladder_wires(Column_ladder& ladder, int word_lines,
                                const Bitline_electrical& wires,
                                const Netlist_options& nopts)
{
    util::expects(nopts.vss_rail_sharing >= 1.0,
                  "rail sharing factor must be >= 1");
    util::expects(wires.r_bl_cell > 0.0 && wires.c_bl_cell > 0.0,
                  "bit-line parasitics must be extracted first");
    const auto n = static_cast<std::size_t>(word_lines);
    util::expects(ladder.r_bl.size() == n && ladder.c_vss.size() == n,
                  "netlist ladder handles out of sync with word lines");

    for (std::size_t i = 0; i < n; ++i) {
        ladder.r_bl[i]->set_resistance(wires.r_bl_cell);
        ladder.r_blb[i]->set_resistance(wires.r_blb_cell);
        ladder.r_vss[i]->set_resistance(wires.r_vss_cell /
                                        nopts.vss_rail_sharing);
        ladder.c_bl[i]->set_capacitance(wires.c_bl_cell);
        ladder.c_blb[i]->set_capacitance(wires.c_blb_cell);
        ladder.c_vss[i]->set_capacitance(wires.c_vss_cell);
    }
}

} // namespace

namespace {

/// Shared build of the read-shaped column circuit: precharge/equalizer
/// periphery plus the column substrate.  The read schedule releases the
/// precharge before the word line fires; the disturb (half-select)
/// schedule holds the precharge on for the whole window — the column is
/// not the one being read, its word line just shares the fired row.
Read_netlist build_read_like_netlist(const tech::Technology& tech,
                                     const Cell_electrical& cell,
                                     const Bitline_electrical& wires,
                                     const Array_config& cfg,
                                     const Read_timing& timing,
                                     const Netlist_options& nopts,
                                     bool hold_precharge)
{
    validate_column_inputs(cfg, wires, nopts);

    const int n = cfg.word_lines;
    const double vdd = tech.feol.vdd;

    Read_netlist net;
    net.timing = timing;
    net.vdd = vdd;
    net.sense_margin = tech.feol.sense_margin;
    net.word_lines = n;

    spice::Circuit& c = net.circuit;

    // --- rails and controls -------------------------------------------------
    const spice::Node vdd_n = c.node("vdd");
    c.add_voltage_source("Vdd", vdd_n, spice::ground_node,
                         spice::Waveform::dc(vdd));

    const spice::Node prechb = c.node("prechb");
    c.add_voltage_source(
        "Vprechb", prechb, spice::ground_node,
        hold_precharge
            ? spice::Waveform::dc(0.0)
            : spice::Waveform::pulse(0.0, vdd, timing.t_precharge_off,
                                     timing.edge_time));

    net.wl = c.node("wl");
    c.add_voltage_source(
        "Vwl", net.wl, spice::ground_node,
        spice::Waveform::pulse(0.0, vdd, timing.t_wl_on, timing.edge_time));

    // --- bit-line heads (sense side) ----------------------------------------
    net.bl_sense = c.node("bl_h");
    net.blb_sense = c.node("blb_h");

    // Precharge PMOS pair + equalizer, sized with the array.
    const double m_pre = precharge_multiplicity(n);
    c.add_mosfet("Mpre_bl", net.bl_sense, prechb, vdd_n, cell.pull_up,
                 m_pre);
    c.add_mosfet("Mpre_blb", net.blb_sense, prechb, vdd_n, cell.pull_up,
                 m_pre);
    c.add_mosfet("Meq", net.bl_sense, prechb, net.blb_sense, cell.pull_up,
                 m_pre);
    // Junction load of the precharge circuit on each head: Cpre(n).
    const double c_pre = precharge_cap(n, cell);
    c.add_capacitor("Cpre_bl", net.bl_sense, spice::ground_node, c_pre);
    c.add_capacitor("Cpre_blb", net.blb_sense, spice::ground_node, c_pre);

    // --- the shared column substrate ----------------------------------------
    net.dc.newton = spice::Newton_options{};
    const Accessed_cell accessed = build_column_substrate(
        c, cell, wires, n, vdd, nopts, net.bl_sense, net.blb_sense, net.wl,
        vdd_n, net.dc, net.ladder);
    net.q = accessed.q;
    net.qb = accessed.qb;
    net.bl_far = accessed.bl_far;
    net.blb_far = accessed.blb_far;

    return net;
}

} // namespace

Read_netlist build_read_netlist(const tech::Technology& tech,
                                const Cell_electrical& cell,
                                const Bitline_electrical& wires,
                                const Array_config& cfg,
                                const Read_timing& timing,
                                const Netlist_options& nopts)
{
    return build_read_like_netlist(tech, cell, wires, cfg, timing, nopts,
                                   /*hold_precharge=*/false);
}

Disturb_netlist build_disturb_netlist(const tech::Technology& tech,
                                      const Cell_electrical& cell,
                                      const Bitline_electrical& wires,
                                      const Array_config& cfg,
                                      const Read_timing& timing,
                                      const Netlist_options& nopts)
{
    return build_read_like_netlist(tech, cell, wires, cfg, timing, nopts,
                                   /*hold_precharge=*/true);
}

Write_netlist build_write_netlist(const tech::Technology& tech,
                                  const Cell_electrical& cell,
                                  const Bitline_electrical& wires,
                                  const Array_config& cfg,
                                  const Write_timing& timing,
                                  const Netlist_options& nopts)
{
    validate_column_inputs(cfg, wires, nopts);
    util::expects(timing.edge_time > 0.0, "control edge time must be positive");
    util::expects(timing.t_drive_on > timing.t_precharge_off,
                  "write drive must fire after the precharge releases");

    const int n = cfg.word_lines;
    const double vdd = tech.feol.vdd;

    Write_netlist net;
    net.timing = timing;
    net.vdd = vdd;
    net.word_lines = n;

    spice::Circuit& c = net.circuit;

    // --- rails and controls -------------------------------------------------
    const spice::Node vdd_n = c.node("vdd");
    c.add_voltage_source("Vdd", vdd_n, spice::ground_node,
                         spice::Waveform::dc(vdd));

    const spice::Node prechb = c.node("prechb");
    c.add_voltage_source(
        "Vprechb", prechb, spice::ground_node,
        spice::Waveform::pulse(0.0, vdd, timing.t_precharge_off,
                               timing.edge_time));

    // Write enable (NMOS pull-down gate) and its complement (PMOS keeper).
    const spice::Node we = c.node("we");
    c.add_voltage_source(
        "Vwe", we, spice::ground_node,
        spice::Waveform::pulse(0.0, vdd, timing.t_drive_on,
                               timing.edge_time));
    const spice::Node web = c.node("web");
    c.add_voltage_source(
        "Vweb", web, spice::ground_node,
        spice::Waveform::pulse(vdd, 0.0, timing.t_drive_on,
                               timing.edge_time));

    const spice::Node wl = c.node("wl");
    c.add_voltage_source(
        "Vwl", wl, spice::ground_node,
        spice::Waveform::pulse(0.0, vdd, timing.t_drive_on,
                               timing.edge_time));

    // --- bit-line heads (drive side) ----------------------------------------
    net.bl = c.node("bl_h");
    net.blb = c.node("blb_h");

    // Precharge pair (released before the write).
    const double m_pre = precharge_multiplicity(n);
    c.add_mosfet("Mpre_bl", net.bl, prechb, vdd_n, cell.pull_up, m_pre);
    c.add_mosfet("Mpre_blb", net.blb, prechb, vdd_n, cell.pull_up, m_pre);
    const double c_pre = precharge_cap(n, cell);
    c.add_capacitor("Cpre_bl", net.bl, spice::ground_node, c_pre);
    c.add_capacitor("Cpre_blb", net.blb, spice::ground_node, c_pre);

    // Write driver, sized with the array like the precharge: NMOS yanks
    // BLB low, PMOS keeper holds BL high.
    c.add_mosfet("Mwr_pd", net.blb, we, spice::ground_node, cell.pull_down,
                 2.0 * m_pre);
    c.add_mosfet("Mwr_keep", net.bl, web, vdd_n, cell.pull_up, m_pre);

    // --- the shared column substrate ----------------------------------------
    const Accessed_cell accessed = build_column_substrate(
        c, cell, wires, n, vdd, nopts, net.bl, net.blb, wl, vdd_n, net.dc,
        net.ladder);
    net.q = accessed.q;
    net.qb = accessed.qb;

    return net;
}

void update_read_netlist_wires(Read_netlist& net,
                               const Bitline_electrical& wires,
                               const Netlist_options& nopts)
{
    update_column_ladder_wires(net.ladder, net.word_lines, wires, nopts);
}

void update_write_netlist_wires(Write_netlist& net,
                                const Bitline_electrical& wires,
                                const Netlist_options& nopts)
{
    update_column_ladder_wires(net.ladder, net.word_lines, wires, nopts);
}

} // namespace mpsram::sram
