#include "sram/netlist_builder.h"

#include <string>

#include "util/contracts.h"

namespace mpsram::sram {

namespace {

std::string idx_name(const char* base, int i)
{
    return std::string(base) + std::to_string(i);
}

} // namespace

Read_netlist build_read_netlist(const tech::Technology& tech,
                                const Cell_electrical& cell,
                                const Bitline_electrical& wires,
                                const Array_config& cfg,
                                const Read_timing& timing,
                                const Netlist_options& nopts)
{
    util::expects(nopts.vss_strap_interval >= 0,
                  "strap interval must be non-negative");
    util::expects(nopts.vss_rail_sharing >= 1.0,
                  "rail sharing factor must be >= 1");
    util::expects(cfg.word_lines > 0, "array needs word lines");
    util::expects(wires.r_bl_cell > 0.0 && wires.c_bl_cell > 0.0,
                  "bit-line parasitics must be extracted first");

    const int n = cfg.word_lines;
    const double vdd = tech.feol.vdd;

    Read_netlist net;
    net.timing = timing;
    net.vdd = vdd;
    net.sense_margin = tech.feol.sense_margin;
    net.word_lines = n;

    spice::Circuit& c = net.circuit;

    // --- rails and controls -------------------------------------------------
    const spice::Node vdd_n = c.node("vdd");
    c.add_voltage_source("Vdd", vdd_n, spice::ground_node,
                         spice::Waveform::dc(vdd));

    const spice::Node prechb = c.node("prechb");
    c.add_voltage_source(
        "Vprechb", prechb, spice::ground_node,
        spice::Waveform::pulse(0.0, vdd, timing.t_precharge_off,
                               timing.edge_time));

    net.wl = c.node("wl");
    c.add_voltage_source(
        "Vwl", net.wl, spice::ground_node,
        spice::Waveform::pulse(0.0, vdd, timing.t_wl_on, timing.edge_time));

    // --- bit-line heads (sense side) ----------------------------------------
    net.bl_sense = c.node("bl_h");
    net.blb_sense = c.node("blb_h");

    // Precharge PMOS pair + equalizer, sized with the array.
    const double m_pre = precharge_multiplicity(n);
    c.add_mosfet("Mpre_bl", net.bl_sense, prechb, vdd_n, cell.pull_up,
                 m_pre);
    c.add_mosfet("Mpre_blb", net.blb_sense, prechb, vdd_n, cell.pull_up,
                 m_pre);
    c.add_mosfet("Meq", net.bl_sense, prechb, net.blb_sense, cell.pull_up,
                 m_pre);
    // Junction load of the precharge circuit on each head: Cpre(n).
    const double c_pre = precharge_cap(n, cell);
    c.add_capacitor("Cpre_bl", net.bl_sense, spice::ground_node, c_pre);
    c.add_capacitor("Cpre_blb", net.blb_sense, spice::ground_node, c_pre);

    // --- per-cell ladders and cells ------------------------------------------
    spice::Node bl_prev = net.bl_sense;
    spice::Node blb_prev = net.blb_sense;
    spice::Node vss_prev = spice::ground_node;  // rail tap at the near end

    net.dc.newton = spice::Newton_options{};

    for (int i = 0; i < n; ++i) {
        const spice::Node bl_i = c.node(idx_name("bl", i));
        const spice::Node blb_i = c.node(idx_name("blb", i));
        const spice::Node vss_i = c.node(idx_name("vss", i));
        const spice::Node q_i = c.node(idx_name("q", i));
        const spice::Node qb_i = c.node(idx_name("qb", i));

        // Wire ladder segments (handles retained for wire-value updates).
        net.ladder.r_bl.push_back(&c.add_resistor(idx_name("Rbl", i), bl_prev,
                                                  bl_i, wires.r_bl_cell));
        net.ladder.r_blb.push_back(&c.add_resistor(
            idx_name("Rblb", i), blb_prev, blb_i, wires.r_blb_cell));
        net.ladder.r_vss.push_back(
            &c.add_resistor(idx_name("Rvss", i), vss_prev, vss_i,
                            wires.r_vss_cell / nopts.vss_rail_sharing));

        // Optional periodic VSS strap into the vertical power grid.
        if (nopts.vss_strap_interval > 0 &&
            (i + 1) % nopts.vss_strap_interval == 0) {
            c.add_resistor(idx_name("Rstrap", i), vss_i, spice::ground_node,
                           nopts.vss_strap_resistance);
        }

        // Wire capacitance (coupling to static rails folded to ground).
        net.ladder.c_bl.push_back(&c.add_capacitor(
            idx_name("Cbl", i), bl_i, spice::ground_node, wires.c_bl_cell));
        net.ladder.c_blb.push_back(
            &c.add_capacitor(idx_name("Cblb", i), blb_i, spice::ground_node,
                             wires.c_blb_cell));
        net.ladder.c_vss.push_back(
            &c.add_capacitor(idx_name("Cvss", i), vss_i, spice::ground_node,
                             wires.c_vss_cell));

        // Pass-gate junction load on the bit lines (the per-cell CFE).
        c.add_capacitor(idx_name("Cfe_bl", i), bl_i, spice::ground_node,
                        cell.bitline_junction_cap());
        c.add_capacitor(idx_name("Cfe_blb", i), blb_i, spice::ground_node,
                        cell.bitline_junction_cap());

        // The 6T cell.  Only the last row's word line is driven; all other
        // pass gates are held off by grounding their gates.
        const bool accessed = (i == n - 1);
        const spice::Node wl_i = accessed ? net.wl : spice::ground_node;

        c.add_mosfet(idx_name("Mpu_q", i), q_i, qb_i, vdd_n, cell.pull_up,
                     cell.m_pull_up);
        c.add_mosfet(idx_name("Mpd_q", i), q_i, qb_i, vss_i, cell.pull_down,
                     cell.m_pull_down);
        c.add_mosfet(idx_name("Mpu_qb", i), qb_i, q_i, vdd_n, cell.pull_up,
                     cell.m_pull_up);
        c.add_mosfet(idx_name("Mpd_qb", i), qb_i, q_i, vss_i, cell.pull_down,
                     cell.m_pull_down);
        c.add_mosfet(idx_name("Mpg_bl", i), bl_i, wl_i, q_i, cell.pass_gate,
                     cell.m_pass_gate);
        c.add_mosfet(idx_name("Mpg_blb", i), blb_i, wl_i, qb_i,
                     cell.pass_gate, cell.m_pass_gate);

        // Storage-node capacitance.
        c.add_capacitor(idx_name("Cq", i), q_i, spice::ground_node,
                        cell.storage_node_cap());
        c.add_capacitor(idx_name("Cqb", i), qb_i, spice::ground_node,
                        cell.storage_node_cap());

        // Latch initialization: every cell stores 0 on the BL side, so the
        // accessed read discharges BL.
        net.dc.forces.push_back({q_i, 0.0, 1.0});
        net.dc.forces.push_back({qb_i, vdd, 1.0});
        net.dc.initial_guesses.emplace_back(bl_i, vdd);
        net.dc.initial_guesses.emplace_back(blb_i, vdd);
        net.dc.initial_guesses.emplace_back(vss_i, 0.0);

        if (accessed) {
            net.q = q_i;
            net.qb = qb_i;
            net.bl_far = bl_i;
            net.blb_far = blb_i;
        }

        bl_prev = bl_i;
        blb_prev = blb_i;
        vss_prev = vss_i;
    }

    net.dc.initial_guesses.emplace_back(net.bl_sense, vdd);
    net.dc.initial_guesses.emplace_back(net.blb_sense, vdd);

    return net;
}

void update_read_netlist_wires(Read_netlist& net,
                               const Bitline_electrical& wires,
                               const Netlist_options& nopts)
{
    util::expects(nopts.vss_rail_sharing >= 1.0,
                  "rail sharing factor must be >= 1");
    util::expects(wires.r_bl_cell > 0.0 && wires.c_bl_cell > 0.0,
                  "bit-line parasitics must be extracted first");
    const auto n = static_cast<std::size_t>(net.word_lines);
    util::expects(net.ladder.r_bl.size() == n &&
                      net.ladder.c_vss.size() == n,
                  "netlist ladder handles out of sync with word lines");

    for (std::size_t i = 0; i < n; ++i) {
        net.ladder.r_bl[i]->set_resistance(wires.r_bl_cell);
        net.ladder.r_blb[i]->set_resistance(wires.r_blb_cell);
        net.ladder.r_vss[i]->set_resistance(wires.r_vss_cell /
                                            nopts.vss_rail_sharing);
        net.ladder.c_bl[i]->set_capacitance(wires.c_bl_cell);
        net.ladder.c_blb[i]->set_capacitance(wires.c_blb_cell);
        net.ladder.c_vss[i]->set_capacitance(wires.c_vss_cell);
    }
}

} // namespace mpsram::sram
