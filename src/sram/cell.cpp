#include "sram/cell.h"

#include <cmath>

#include "util/contracts.h"

namespace mpsram::sram {

double Cell_electrical::storage_node_cap() const
{
    // The storage node sees the gates of the opposite inverter (PU + PD)
    // and the drain junctions of its own inverter pair.
    const double gates = c_gate * (m_pull_up + m_pull_down);
    const double junctions = c_junction * (m_pull_up + m_pull_down);
    return gates + junctions;
}

double Cell_electrical::bitline_junction_cap() const
{
    return c_junction * m_pass_gate;
}

Cell_electrical Cell_electrical::n10(const tech::Feol_params& feol)
{
    Cell_electrical cell;

    spice::Mosfet_params nmos;
    nmos.type = spice::Mosfet_type::nmos;
    nmos.vth = feol.vth;
    cell.pull_down = spice::calibrate_beta(nmos, feol.vdd, feol.nmos_ion);
    // Pass gate is drawn slightly weaker than the pull-down so the cell is
    // read-stable (classic HD-cell beta ratio).
    cell.pass_gate =
        spice::calibrate_beta(nmos, feol.vdd, 0.8 * feol.nmos_ion);

    spice::Mosfet_params pmos;
    pmos.type = spice::Mosfet_type::pmos;
    pmos.vth = feol.vth;
    cell.pull_up = spice::calibrate_beta(pmos, feol.vdd, feol.pmos_ion);

    cell.c_gate = feol.c_gate;
    cell.c_junction = feol.c_junction;
    return cell;
}

double precharge_multiplicity(int word_lines)
{
    util::expects(word_lines > 0, "array must have word lines");
    return std::max(1.0, std::ceil(static_cast<double>(word_lines) / 64.0));
}

double precharge_cap(int word_lines, const Cell_electrical& cell)
{
    const double m = precharge_multiplicity(word_lines);
    // Constant column-periphery junctions (sense amp input + column mux)
    // plus the scaling precharge PMOS and its equalizer share.  The
    // constant part dominates for short arrays, which is what bends the
    // tdp(n) trend at n = 16 (the "almost constant" term of eq. 5).
    return cell.c_junction * (2.0 + 1.5 * m);
}

} // namespace mpsram::sram
