// Electrical specification of the 6T SRAM cell (Fig. 1a of the paper).
//
// Device roles: two cross-coupled inverters (pull-up PMOS + pull-down
// NMOS) and two NMOS pass-gates connecting the storage nodes to BL/BLB
// under word-line control.  The N10 high-density cell is a 1-1-1 fin
// configuration; drive currents calibrate the compact-model beta.
#ifndef MPSRAM_SRAM_CELL_H
#define MPSRAM_SRAM_CELL_H

#include "spice/mosfet_model.h"
#include "tech/technology.h"

namespace mpsram::sram {

struct Cell_electrical {
    spice::Mosfet_params pull_down;  ///< NMOS, storage-node to VSS
    spice::Mosfet_params pass_gate;  ///< NMOS, bit line to storage node
    spice::Mosfet_params pull_up;    ///< PMOS, storage-node to VDD
    double m_pull_down = 1.0;        ///< fin multiplicity
    double m_pass_gate = 1.0;
    double m_pull_up = 1.0;

    /// Gate capacitance of a unit device [F].
    double c_gate = 0.0;
    /// Source/drain junction capacitance of a unit device [F].
    double c_junction = 0.0;

    /// Lumped storage-node capacitance: two gate loads (the opposite
    /// inverter) plus the inverter drain junctions [F].
    double storage_node_cap() const;

    /// Pass-gate drain junction on the bit line per cell — the paper's
    /// per-cell CFE [F].
    double bitline_junction_cap() const;

    /// Build the N10 cell from the technology's FEOL constants.
    static Cell_electrical n10(const tech::Feol_params& feol);
};

/// Precharge-circuit sizing rule: drive strength scales with the
/// (horizontal) array size n, in steps of whole devices (paper Section
/// II-C assumption).
double precharge_multiplicity(int word_lines);

/// Capacitive load the precharge circuit leaves on each bit line — the
/// paper's Cpre(n) [F]: junction of the precharge PMOS plus half the
/// equalizer device.
double precharge_cap(int word_lines, const Cell_electrical& cell);

} // namespace mpsram::sram

#endif // MPSRAM_SRAM_CELL_H
