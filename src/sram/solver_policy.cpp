#include "sram/solver_policy.h"

#include <cstdlib>
#include <string>

#include "util/contracts.h"

namespace mpsram::sram {

spice::Solver_policy parse_solver_policy(std::string_view text)
{
    if (text == "bypass") return spice::Solver_policy::bypass;
    if (text == "direct") return spice::Solver_policy::direct;
    if (text == "iterative") return spice::Solver_policy::iterative;
    // Same loud-failure rule as MPSRAM_SIM_ACCURACY: a typo'd pin must
    // not silently run the wrong solver, and the message must show what
    // was seen and what would have worked.
    throw util::Precondition_error(
        "invalid MPSRAM_SOLVER_POLICY value '" + std::string(text) +
        "' (accepted: 'direct', 'bypass', 'iterative')");
}

spice::Solver_policy default_solver_policy()
{
    static const spice::Solver_policy value = [] {
        const char* env = std::getenv("MPSRAM_SOLVER_POLICY");
        return env == nullptr ? spice::Solver_policy::bypass
                              : parse_solver_policy(env);
    }();
    return value;
}

spice::Solver_policy resolve_solver_policy(
    Sim_accuracy accuracy, std::optional<spice::Solver_policy> requested)
{
    if (accuracy == Sim_accuracy::reference) {
        util::expects(
            !requested.has_value() ||
                *requested == spice::Solver_policy::direct,
            "Sim_accuracy::reference is the bitwise oracle and only runs "
            "the direct solver; drop the explicit solver request or use "
            "Sim_accuracy::fast");
        return spice::Solver_policy::direct;
    }
    return requested.value_or(default_solver_policy());
}

void apply_solver_policy(spice::Transient_options& topts,
                         spice::Solver_policy policy)
{
    topts.newton.solver = policy;
}

const char* to_string(spice::Solver_policy policy)
{
    switch (policy) {
    case spice::Solver_policy::direct: return "direct";
    case spice::Solver_policy::bypass: return "bypass";
    case spice::Solver_policy::iterative: return "iterative";
    }
    return "unknown";
}

} // namespace mpsram::sram
