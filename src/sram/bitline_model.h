// Per-cell electrical rollup of the extracted bit-line / rail parasitics:
// the bridge between the LPE world (per-length RC of wires in a realized
// array) and the circuit world (per-cell ladder segments).
#ifndef MPSRAM_SRAM_BITLINE_MODEL_H
#define MPSRAM_SRAM_BITLINE_MODEL_H

#include "extract/extractor.h"
#include "sram/layout.h"
#include "tech/technology.h"

namespace mpsram::sram {

/// Per-cell parasitics of the victim column's wires [ohm, F].
struct Bitline_electrical {
    double r_bl_cell = 0.0;
    double c_bl_cell = 0.0;
    double r_blb_cell = 0.0;
    double c_blb_cell = 0.0;
    double r_vss_cell = 0.0;
    double c_vss_cell = 0.0;

    /// Variation factors of the victim BL vs nominal (formula inputs).
    extract::Rc_variation bl_variation;
};

/// Roll up per-cell values from a realized wire array (and the nominal
/// array for the variation factors).  Both arrays must come from
/// build_metal1_array with the same configuration.
Bitline_electrical roll_up_bitline(const extract::Extractor& extractor,
                                   const geom::Wire_array& nominal,
                                   const geom::Wire_array& realized,
                                   const tech::Technology& tech,
                                   const Array_config& cfg);

/// Nominal-only convenience (realized == nominal).
Bitline_electrical roll_up_nominal(const extract::Extractor& extractor,
                                   const geom::Wire_array& nominal,
                                   const tech::Technology& tech,
                                   const Array_config& cfg);

} // namespace mpsram::sram

#endif // MPSRAM_SRAM_BITLINE_MODEL_H
