#include "sram/disturb_sim.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "spice/measure.h"
#include "util/check.h"
#include "util/contracts.h"

namespace mpsram::sram {

Disturb_result simulate_disturb(Disturb_netlist& net,
                                const Disturb_options& opts)
{
    spice::Transient_workspace workspace;
    return simulate_disturb(net, opts, workspace);
}

Disturb_result simulate_disturb(Disturb_netlist& net,
                                const Disturb_options& opts,
                                spice::Transient_workspace& workspace)
{
    util::expects(opts.nominal_steps > 0, "steps must be positive");
    util::expects(opts.window > 0.0, "window must be positive");
    util::expects(opts.window_per_cell >= 0.0,
                  "per-cell window padding must be non-negative");

    const double window =
        std::max(opts.window, opts.window_per_cell *
                                  static_cast<double>(net.word_lines));

    spice::Transient_options topts;
    topts.tstop = net.timing.wl_mid() + window;
    topts.nominal_steps = opts.nominal_steps;
    topts.dc = net.dc;
    apply_sim_accuracy(topts, opts.accuracy);
    apply_solver_policy(topts,
                        resolve_solver_policy(opts.accuracy, opts.solver));

    const std::vector<spice::Node> probes = {net.q, net.qb, net.bl_far,
                                             net.blb_far};
    const spice::Transient_result waves =
        spice::run_transient(net.circuit, probes, topts, workspace);

    Disturb_result r;
    r.steps = waves.steps();
    const std::string q_name = net.circuit.node_name(net.q);
    r.q_final = waves.final_value(q_name);
    r.qb_final = waves.final_value(net.circuit.node_name(net.qb));

    // Peak from the start of the word-line edge: q sits at 0 before it,
    // so earlier samples cannot host the bump.
    r.v_bump = std::max(0.0, spice::peak_value(waves, q_name,
                                               net.timing.t_wl_on));
    r.bump_fraction = r.v_bump / (0.5 * net.vdd);
    // Bump contract: the peak is clamped non-negative above and a NaN
    // waveform must not leak into the half-select metric as a "bump".
    MPSRAM_ENSURE(std::isfinite(r.v_bump) && r.v_bump >= 0.0,
                  "disturb bump must be finite and non-negative",
                  MPSRAM_VAL(r.v_bump), MPSRAM_VAL(r.q_final));
    // Destructive only if the latch ends on the wrong side; a transient
    // graze of vdd/2 that regenerates back low is not a lost bit.  (The
    // peak always bounds q_final, so no separate bump check is needed.)
    r.flipped = r.q_final > 0.5 * net.vdd;
    return r;
}

} // namespace mpsram::sram
