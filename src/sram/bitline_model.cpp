#include "sram/bitline_model.h"

#include "util/contracts.h"

namespace mpsram::sram {

Bitline_electrical roll_up_bitline(const extract::Extractor& extractor,
                                   const geom::Wire_array& nominal,
                                   const geom::Wire_array& realized,
                                   const tech::Technology& tech,
                                   const Array_config& cfg)
{
    util::expects(nominal.size() == realized.size(),
                  "nominal/realized arrays must match");

    const Victim_wires victims = find_victim_wires(realized, cfg);
    const double cell_len = tech.cell.cell_length;

    const extract::Wire_rc bl = extractor.wire_rc(realized, victims.bl);
    const extract::Wire_rc blb = extractor.wire_rc(realized, victims.blb);
    const extract::Wire_rc vss = extractor.wire_rc(realized, victims.vss);

    Bitline_electrical e;
    e.r_bl_cell = bl.r * cell_len;
    e.c_bl_cell = bl.c_total() * cell_len;
    e.r_blb_cell = blb.r * cell_len;
    e.c_blb_cell = blb.c_total() * cell_len;
    e.r_vss_cell = vss.r * cell_len;
    e.c_vss_cell = vss.c_total() * cell_len;
    e.bl_variation = extractor.variation(nominal, realized, victims.bl);
    return e;
}

Bitline_electrical roll_up_nominal(const extract::Extractor& extractor,
                                   const geom::Wire_array& nominal,
                                   const tech::Technology& tech,
                                   const Array_config& cfg)
{
    return roll_up_bitline(extractor, nominal, nominal, tech, cfg);
}

} // namespace mpsram::sram
