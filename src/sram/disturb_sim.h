// Half-select / read-disturb measurement (the "one more trait binding"
// workload of the unified column substrate).
//
// When a read fires a word line, every column of that row sees its pass
// gates open — including columns that are not being read and whose bit
// lines are held at vdd by the still-active precharge.  In a 0-storing
// cell the open BL pass gate then pulls the low storage node up against
// the pull-down: the half-select bump.  The figure of merit here is the
// peak excursion of q (v_bump) over the word-line pulse; `flipped`
// reports a destructive disturb — the latch still holding q above vdd/2
// at the window end, i.e. the bit is actually lost, not merely grazed.
//
// Interconnect variability enters through the precharged bit-line ladder
// that must hold the far cell's BL stiff while the pass gate draws
// charge — the same extracted RC the read and write studies vary, so the
// worst-case corner search and its memo are shared with them.
//
// The netlist is the read circuit under a disturb drive schedule
// (build_disturb_netlist in netlist_builder.h); this header owns the
// measurement and the per-worker simulation context trait binding.
#ifndef MPSRAM_SRAM_DISTURB_SIM_H
#define MPSRAM_SRAM_DISTURB_SIM_H

#include <optional>

#include "spice/workspace.h"
#include "sram/netlist_builder.h"
#include "sram/sim_accuracy.h"
#include "sram/sim_context.h"
#include "sram/solver_policy.h"

namespace mpsram::sram {

struct Disturb_options {
    /// Transient resolution (nominal reference size under the fast policy).
    int nominal_steps = 1500;
    /// Measurement window after the word-line edge [s]; the effective
    /// window is max(window, window_per_cell * n) so tall columns keep the
    /// slower bump settle inside the measured range.
    double window = 200e-12;
    /// Per-cell window padding [s].
    double window_per_cell = 1.5e-12;
    /// Integration engine (see sim_accuracy.h), same policy knob as the
    /// read and write paths.
    Sim_accuracy accuracy = default_sim_accuracy();
    /// Linear-solver tier; resolved against `accuracy` exactly like the
    /// read and write paths (see solver_policy.h).
    std::optional<spice::Solver_policy> solver{};
};

struct Disturb_result {
    double v_bump = 0.0;  ///< [V] peak q excursion after WL fires
    /// v_bump / (vdd/2): the fraction of the trip margin the bump
    /// consumes.  Can reach 1 transiently without losing the bit — see
    /// `flipped` for the destructive verdict.
    double bump_fraction = 0.0;
    /// Destructive disturb: q still above vdd/2 at the window end (the
    /// latch regenerated the wrong way and the bit is lost).
    bool flipped = false;
    double q_final = 0.0;
    double qb_final = 0.0;
    spice::Step_stats steps;  ///< step-control counters of the run
};

/// Simulate the half-select pulse and measure the storage bump.  The
/// netlist is reusable (capacitor history is re-latched by each run's DC
/// operating point); the workspace form keeps the compiled MNA system
/// across calls.  Results are bitwise identical either way.
Disturb_result simulate_disturb(Disturb_netlist& net,
                                const Disturb_options& opts = Disturb_options{});
Disturb_result simulate_disturb(Disturb_netlist& net,
                                const Disturb_options& opts,
                                spice::Transient_workspace& workspace);

/// Trait binding of the disturb path for the shared column-simulation
/// context (see sim_context.h).  The timing type is the read schedule —
/// the disturb is defined by a read happening elsewhere in the row.
struct Disturb_sim_traits {
    using Netlist = Disturb_netlist;
    using Timing = Read_timing;
    using Options = Disturb_options;
    using Result = Disturb_result;

    static Disturb_netlist build(const tech::Technology& tech,
                                 const Cell_electrical& cell,
                                 const Bitline_electrical& wires,
                                 const Array_config& cfg,
                                 const Read_timing& timing,
                                 const Netlist_options& nopts)
    {
        return build_disturb_netlist(tech, cell, wires, cfg, timing, nopts);
    }
    static void update_wires(Disturb_netlist& net,
                             const Bitline_electrical& wires,
                             const Netlist_options& nopts)
    {
        update_read_netlist_wires(net, wires, nopts);
    }
    static Disturb_result simulate(Disturb_netlist& net,
                                   const Disturb_options& opts,
                                   spice::Transient_workspace& workspace)
    {
        return simulate_disturb(net, opts, workspace);
    }
};

/// Re-entrant disturb-simulation context; see sim_context.h for the reuse
/// and threading contract.
using Disturb_sim_context = Column_sim_context<Disturb_sim_traits>;

} // namespace mpsram::sram

#endif // MPSRAM_SRAM_DISTURB_SIM_H
