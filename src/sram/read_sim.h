// Read-time measurement: run the read transient and extract td, the time
// from the word line reaching 50% to |Vbl - Vblb| reaching the
// sense-amplifier sensitivity at the sense end of the column.
#ifndef MPSRAM_SRAM_READ_SIM_H
#define MPSRAM_SRAM_READ_SIM_H

#include <optional>

#include "spice/analysis.h"
#include "spice/workspace.h"
#include "sram/netlist_builder.h"
#include "sram/sim_accuracy.h"
#include "sram/sim_context.h"
#include "sram/solver_policy.h"

namespace mpsram::sram {

struct Read_options {
    /// Transient resolution (steps across the whole window).  Under the
    /// fast policy this is the nominal reference size of the adaptive
    /// controller, not the actual solve count.
    int nominal_steps = 1500;
    /// Initial guess of the measurement window after word-line mid [s];
    /// grows with the array automatically and doubles on a miss.
    double min_window = 200e-12;
    /// Per-cell window padding [s].
    double window_per_cell = 1.5e-12;
    /// Maximum window-doubling retries before giving up.
    int max_retries = 3;
    spice::Integration_method method =
        spice::Integration_method::trapezoidal;
    /// Integration engine (see sim_accuracy.h): calibrated adaptive-LTE
    /// stepping by default, fixed-step reference when pinned.
    Sim_accuracy accuracy = default_sim_accuracy();
    /// Linear-solver tier; defaulted requests resolve against `accuracy`
    /// (see solver_policy.h — reference always runs direct, an explicit
    /// reuse tier under reference throws).
    std::optional<spice::Solver_policy> solver{};
};

struct Read_result {
    double td = -1.0;       ///< [s]; negative if never crossed
    double t_cross = -1.0;  ///< absolute crossing time [s]
    bool crossed = false;
    double bl_final = 0.0;  ///< sense-node BL voltage at window end [V]
    double blb_final = 0.0;
    /// Step-control counters summed over the window-doubling attempts of
    /// this measurement (adaptive-vs-fixed cost observable).
    spice::Step_stats steps;
};

/// Simulate the read and measure td.  The netlist is reusable: capacitor
/// history is re-initialized by the DC operating point of each run.  The
/// workspace form keeps the compiled MNA system across calls (and across
/// the window-doubling retries of one call); results are bitwise identical
/// either way.
Read_result simulate_read(Read_netlist& net,
                          const Read_options& opts = Read_options{});
Read_result simulate_read(Read_netlist& net, const Read_options& opts,
                          spice::Transient_workspace& workspace);

/// Trait binding of the read path for the shared column-simulation
/// context (see sim_context.h).
struct Read_sim_traits {
    using Netlist = Read_netlist;
    using Timing = Read_timing;
    using Options = Read_options;
    using Result = Read_result;

    static Read_netlist build(const tech::Technology& tech,
                              const Cell_electrical& cell,
                              const Bitline_electrical& wires,
                              const Array_config& cfg,
                              const Read_timing& timing,
                              const Netlist_options& nopts)
    {
        return build_read_netlist(tech, cell, wires, cfg, timing, nopts);
    }
    static void update_wires(Read_netlist& net,
                             const Bitline_electrical& wires,
                             const Netlist_options& nopts)
    {
        update_read_netlist_wires(net, wires, nopts);
    }
    static Read_result simulate(Read_netlist& net, const Read_options& opts,
                                spice::Transient_workspace& workspace)
    {
        return simulate_read(net, opts, workspace);
    }
};

/// Re-entrant read-simulation context; see sim_context.h for the reuse
/// and threading contract.
using Read_sim_context = Column_sim_context<Read_sim_traits>;

} // namespace mpsram::sram

#endif // MPSRAM_SRAM_READ_SIM_H
