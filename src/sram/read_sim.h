// Read-time measurement: run the read transient and extract td, the time
// from the word line reaching 50% to |Vbl - Vblb| reaching the
// sense-amplifier sensitivity at the sense end of the column.
#ifndef MPSRAM_SRAM_READ_SIM_H
#define MPSRAM_SRAM_READ_SIM_H

#include <memory>

#include "spice/analysis.h"
#include "spice/workspace.h"
#include "sram/netlist_builder.h"
#include "sram/sim_accuracy.h"

namespace mpsram::sram {

struct Read_options {
    /// Transient resolution (steps across the whole window).  Under the
    /// fast policy this is the nominal reference size of the adaptive
    /// controller, not the actual solve count.
    int nominal_steps = 1500;
    /// Initial guess of the measurement window after word-line mid [s];
    /// grows with the array automatically and doubles on a miss.
    double min_window = 200e-12;
    /// Per-cell window padding [s].
    double window_per_cell = 1.5e-12;
    /// Maximum window-doubling retries before giving up.
    int max_retries = 3;
    spice::Integration_method method =
        spice::Integration_method::trapezoidal;
    /// Integration engine (see sim_accuracy.h): calibrated adaptive-LTE
    /// stepping by default, fixed-step reference when pinned.
    Sim_accuracy accuracy = default_sim_accuracy();
};

struct Read_result {
    double td = -1.0;       ///< [s]; negative if never crossed
    double t_cross = -1.0;  ///< absolute crossing time [s]
    bool crossed = false;
    double bl_final = 0.0;  ///< sense-node BL voltage at window end [V]
    double blb_final = 0.0;
    /// Step-control counters summed over the window-doubling attempts of
    /// this measurement (adaptive-vs-fixed cost observable).
    spice::Step_stats steps;
};

/// Simulate the read and measure td.  The netlist is reusable: capacitor
/// history is re-initialized by the DC operating point of each run.  The
/// workspace form keeps the compiled MNA system across calls (and across
/// the window-doubling retries of one call); results are bitwise identical
/// either way.
Read_result simulate_read(Read_netlist& net,
                          const Read_options& opts = Read_options{});
Read_result simulate_read(Read_netlist& net, const Read_options& opts,
                          spice::Transient_workspace& workspace);

/// Re-entrant read-simulation context: one netlist plus one solver
/// workspace, owned by a single worker of a sweep.  The netlist is rebuilt
/// only when the array configuration (word lines, timing, netlist options)
/// changes; runs that differ only in extracted wire values re-point the
/// existing ladder and keep the symbolic factorization.
///
/// The technology and cell handed to simulate() must stay the same objects
/// (or at least the same values) across calls — the context caches device
/// parameters derived from them.  One context must not be shared between
/// threads; sweeps allocate one per Run_context::worker.
class Read_sim_context {
public:
    Read_result simulate(const tech::Technology& tech,
                         const Cell_electrical& cell,
                         const Bitline_electrical& wires,
                         const Array_config& cfg,
                         const Read_timing& timing = Read_timing{},
                         const Netlist_options& nopts = Netlist_options{},
                         const Read_options& opts = Read_options{});

    /// Netlist (re)builds performed so far — the reuse observable.
    std::size_t netlist_builds() const { return builds_; }

private:
    bool reusable(const Array_config& cfg, const Read_timing& timing,
                  const Netlist_options& nopts) const;

    std::unique_ptr<Read_netlist> net_;
    spice::Transient_workspace workspace_;
    int word_lines_ = -1;
    Read_timing timing_{};
    Netlist_options nopts_{};
    std::size_t builds_ = 0;
};

} // namespace mpsram::sram

#endif // MPSRAM_SRAM_READ_SIM_H
