// Read-time measurement: run the read transient and extract td, the time
// from the word line reaching 50% to |Vbl - Vblb| reaching the
// sense-amplifier sensitivity at the sense end of the column.
#ifndef MPSRAM_SRAM_READ_SIM_H
#define MPSRAM_SRAM_READ_SIM_H

#include "spice/analysis.h"
#include "sram/netlist_builder.h"

namespace mpsram::sram {

struct Read_options {
    /// Transient resolution (steps across the whole window).
    int nominal_steps = 1500;
    /// Initial guess of the measurement window after word-line mid [s];
    /// grows with the array automatically and doubles on a miss.
    double min_window = 200e-12;
    /// Per-cell window padding [s].
    double window_per_cell = 1.5e-12;
    /// Maximum window-doubling retries before giving up.
    int max_retries = 3;
    spice::Integration_method method =
        spice::Integration_method::trapezoidal;
};

struct Read_result {
    double td = -1.0;       ///< [s]; negative if never crossed
    double t_cross = -1.0;  ///< absolute crossing time [s]
    bool crossed = false;
    double bl_final = 0.0;  ///< sense-node BL voltage at window end [V]
    double blb_final = 0.0;
};

/// Simulate the read and measure td.  The netlist is reusable: capacitor
/// history is re-initialized by the DC operating point of each run.
Read_result simulate_read(Read_netlist& net,
                          const Read_options& opts = Read_options{});

} // namespace mpsram::sram

#endif // MPSRAM_SRAM_READ_SIM_H
