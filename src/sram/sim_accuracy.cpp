#include "sram/sim_accuracy.h"

#include <cstdlib>
#include <string>

#include "util/contracts.h"

namespace mpsram::sram {

Sim_accuracy parse_sim_accuracy(std::string_view text)
{
    if (text == "fast") return Sim_accuracy::fast;
    if (text == "reference") return Sim_accuracy::reference;
    // A typo must not silently run the wrong engine: someone pinning the
    // oracle for a validation run needs the pin to fail loudly, and the
    // message must show what was seen and what would have worked.
    throw util::Precondition_error(
        "invalid MPSRAM_SIM_ACCURACY value '" + std::string(text) +
        "' (accepted: 'reference', 'fast')");
}

Sim_accuracy default_sim_accuracy()
{
    static const Sim_accuracy value = [] {
        const char* env = std::getenv("MPSRAM_SIM_ACCURACY");
        return env == nullptr ? Sim_accuracy::fast : parse_sim_accuracy(env);
    }();
    return value;
}

void apply_sim_accuracy(spice::Transient_options& topts,
                        Sim_accuracy accuracy)
{
    if (accuracy == Sim_accuracy::reference) {
        topts.adaptive = false;
        return;
    }
    topts.adaptive = true;
    topts.lte_rel = fast_lte_rel;
    topts.lte_abs = fast_lte_abs;
    topts.lte_max_growth = fast_lte_max_growth;
}

const char* to_string(Sim_accuracy accuracy)
{
    return accuracy == Sim_accuracy::reference ? "reference" : "fast";
}

} // namespace mpsram::sram
