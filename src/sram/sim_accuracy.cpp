#include "sram/sim_accuracy.h"

#include <cstdlib>
#include <cstring>

#include "util/contracts.h"

namespace mpsram::sram {

Sim_accuracy default_sim_accuracy()
{
    static const Sim_accuracy value = [] {
        const char* env = std::getenv("MPSRAM_SIM_ACCURACY");
        if (env == nullptr || std::strcmp(env, "fast") == 0) {
            return Sim_accuracy::fast;
        }
        // A typo must not silently run the wrong engine: someone pinning
        // the oracle for a validation run needs the pin to fail loudly.
        util::expects(std::strcmp(env, "reference") == 0,
                      "MPSRAM_SIM_ACCURACY must be 'reference' or 'fast'");
        return Sim_accuracy::reference;
    }();
    return value;
}

void apply_sim_accuracy(spice::Transient_options& topts,
                        Sim_accuracy accuracy)
{
    if (accuracy == Sim_accuracy::reference) {
        topts.adaptive = false;
        return;
    }
    topts.adaptive = true;
    topts.lte_rel = fast_lte_rel;
    topts.lte_abs = fast_lte_abs;
    topts.lte_max_growth = fast_lte_max_growth;
}

const char* to_string(Sim_accuracy accuracy)
{
    return accuracy == Sim_accuracy::reference ? "reference" : "fast";
}

} // namespace mpsram::sram
