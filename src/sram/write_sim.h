// Write-operation analysis (extension beyond the paper's read study).
//
// The same column infrastructure, driven the other way: with the cell
// storing 0 on the BL side, a write-1 pulls the high storage node down by
// yanking BLB low through the column write driver while the word line is
// up.  The figure of merit is the write time tw: word-line 50% to the
// storage flip (q crossing vdd/2 upward).  Interconnect variability enters
// through the BLB ladder the driver must discharge — the same RC the read
// study varies.
#ifndef MPSRAM_SRAM_WRITE_SIM_H
#define MPSRAM_SRAM_WRITE_SIM_H

#include "sram/netlist_builder.h"
#include "sram/sim_accuracy.h"

namespace mpsram::sram {

/// Control schedule of the write: precharge releases, then the write
/// driver and word line fire together.
struct Write_timing {
    double t_precharge_off = 20e-12;
    double t_drive_on = 50e-12;  ///< write-enable and word line
    double edge_time = 4e-12;

    double wl_mid() const { return t_drive_on + 0.5 * edge_time; }
};

/// A built write-path circuit plus measurement handles.
struct Write_netlist {
    spice::Circuit circuit;
    spice::Node bl = 0;   ///< near-end BL (held high)
    spice::Node blb = 0;  ///< near-end BLB (driven low)
    spice::Node q = 0;    ///< target cell storage (flips 0 -> 1)
    spice::Node qb = 0;
    spice::Dc_options dc;
    Write_timing timing;
    double vdd = 0.0;
    int word_lines = 0;
};

/// Build the write netlist: column ladders and cells as in the read path,
/// plus an n-scaled write driver (NMOS pull-down on BLB, PMOS keeper on
/// BL) instead of an active precharge.
Write_netlist build_write_netlist(const tech::Technology& tech,
                                  const Cell_electrical& cell,
                                  const Bitline_electrical& wires,
                                  const Array_config& cfg,
                                  const Write_timing& timing = Write_timing{},
                                  const Netlist_options& nopts = Netlist_options{});

struct Write_options {
    /// Transient resolution (nominal reference size under the fast policy).
    int nominal_steps = 1500;
    /// Measurement window after the drive edge [s].
    double window = 400e-12;
    /// Integration engine (see sim_accuracy.h), same policy as the read
    /// path: calibrated adaptive-LTE by default, fixed-step when pinned.
    Sim_accuracy accuracy = default_sim_accuracy();
};

struct Write_result {
    double tw = -1.0;      ///< [s] word-line mid to q = vdd/2; <0 if no flip
    bool flipped = false;
    double q_final = 0.0;
    double qb_final = 0.0;
    spice::Step_stats steps;  ///< step-control counters of the run
};

/// Simulate the write and measure tw.
Write_result simulate_write(Write_netlist& net,
                            const Write_options& opts = Write_options{});

} // namespace mpsram::sram

#endif // MPSRAM_SRAM_WRITE_SIM_H
