// Write-operation analysis (extension beyond the paper's read study).
//
// The same column infrastructure, driven the other way: with the cell
// storing 0 on the BL side, a write-1 pulls the high storage node down by
// yanking BLB low through the column write driver while the word line is
// up.  The figure of merit is the write time tw: word-line 50% to the
// storage flip (q crossing vdd/2 upward).  Interconnect variability enters
// through the BLB ladder the driver must discharge — the same RC the read
// study varies.
//
// The netlist structs and builders live in netlist_builder.h next to the
// read path's; this header owns the measurement (simulate_write) and the
// per-worker simulation context.
#ifndef MPSRAM_SRAM_WRITE_SIM_H
#define MPSRAM_SRAM_WRITE_SIM_H

#include <limits>
#include <optional>

#include "spice/workspace.h"
#include "sram/netlist_builder.h"
#include "sram/sim_accuracy.h"
#include "sram/sim_context.h"
#include "sram/solver_policy.h"

namespace mpsram::sram {

struct Write_options {
    /// Transient resolution (nominal reference size under the fast policy).
    int nominal_steps = 1500;
    /// Measurement window after the drive edge [s]; the effective window
    /// is max(window, window_per_cell * n) so tall columns keep their
    /// slower flip inside the measured range.
    double window = 400e-12;
    /// Per-cell window padding [s].
    double window_per_cell = 1.5e-12;
    /// Integration engine (see sim_accuracy.h), same policy as the read
    /// path: calibrated adaptive-LTE by default, fixed-step when pinned.
    Sim_accuracy accuracy = default_sim_accuracy();
    /// Linear-solver tier; resolved against `accuracy` exactly like the
    /// read path (see solver_policy.h).
    std::optional<spice::Solver_policy> solver{};
};

struct Write_result {
    /// [s] word-line mid to q = vdd/2.  NaN until the cell flips, so a
    /// failed write poisons any penalty arithmetic instead of leaking a
    /// plausible-looking negative sentinel into it; check `flipped`.
    double tw = std::numeric_limits<double>::quiet_NaN();
    bool flipped = false;
    double q_final = 0.0;
    double qb_final = 0.0;
    spice::Step_stats steps;  ///< step-control counters of the run
};

/// Simulate the write and measure tw.  The netlist is reusable: capacitor
/// history is re-initialized by the DC operating point of each run.  The
/// workspace form keeps the compiled MNA system across calls; results are
/// bitwise identical either way.
Write_result simulate_write(Write_netlist& net,
                            const Write_options& opts = Write_options{});
Write_result simulate_write(Write_netlist& net, const Write_options& opts,
                            spice::Transient_workspace& workspace);

/// Trait binding of the write path for the shared column-simulation
/// context (see sim_context.h).
struct Write_sim_traits {
    using Netlist = Write_netlist;
    using Timing = Write_timing;
    using Options = Write_options;
    using Result = Write_result;

    static Write_netlist build(const tech::Technology& tech,
                               const Cell_electrical& cell,
                               const Bitline_electrical& wires,
                               const Array_config& cfg,
                               const Write_timing& timing,
                               const Netlist_options& nopts)
    {
        return build_write_netlist(tech, cell, wires, cfg, timing, nopts);
    }
    static void update_wires(Write_netlist& net,
                             const Bitline_electrical& wires,
                             const Netlist_options& nopts)
    {
        update_write_netlist_wires(net, wires, nopts);
    }
    static Write_result simulate(Write_netlist& net,
                                 const Write_options& opts,
                                 spice::Transient_workspace& workspace)
    {
        return simulate_write(net, opts, workspace);
    }
};

/// Re-entrant write-simulation context; see sim_context.h for the reuse
/// and threading contract.
using Write_sim_context = Column_sim_context<Write_sim_traits>;

} // namespace mpsram::sram

#endif // MPSRAM_SRAM_WRITE_SIM_H
