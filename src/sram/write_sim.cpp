#include "sram/write_sim.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "spice/measure.h"
#include "util/check.h"
#include "util/contracts.h"

namespace mpsram::sram {

Write_result simulate_write(Write_netlist& net, const Write_options& opts)
{
    spice::Transient_workspace workspace;
    return simulate_write(net, opts, workspace);
}

Write_result simulate_write(Write_netlist& net, const Write_options& opts,
                            spice::Transient_workspace& workspace)
{
    util::expects(opts.nominal_steps > 0, "steps must be positive");
    util::expects(opts.window > 0.0, "window must be positive");
    util::expects(opts.window_per_cell >= 0.0,
                  "per-cell window padding must be non-negative");

    const double window =
        std::max(opts.window, opts.window_per_cell *
                                  static_cast<double>(net.word_lines));

    spice::Transient_options topts;
    topts.tstop = net.timing.wl_mid() + window;
    topts.nominal_steps = opts.nominal_steps;
    topts.dc = net.dc;
    apply_sim_accuracy(topts, opts.accuracy);
    apply_solver_policy(topts,
                        resolve_solver_policy(opts.accuracy, opts.solver));

    const std::vector<spice::Node> probes = {net.q, net.qb, net.bl,
                                             net.blb};
    const spice::Transient_result waves =
        spice::run_transient(net.circuit, probes, topts, workspace);

    Write_result r;
    r.steps = waves.steps();
    const std::string q_name = net.circuit.node_name(net.q);
    r.q_final = waves.final_value(q_name);
    r.qb_final = waves.final_value(net.circuit.node_name(net.qb));

    const double t_flip = spice::crossing_time(
        waves, q_name, 0.5 * net.vdd, net.timing.wl_mid());
    if (t_flip >= 0.0 && r.q_final > 0.5 * net.vdd) {
        r.flipped = true;
        r.tw = t_flip - net.timing.wl_mid();
        // Timing contract: a flipped cell reports a finite write time
        // measured from wordline mid-rise, never a negative one.
        MPSRAM_ENSURE(std::isfinite(r.tw) && r.tw >= 0.0,
                      "write time must be finite and non-negative",
                      MPSRAM_VAL(r.tw), MPSRAM_VAL(t_flip));
    }
    return r;
}

} // namespace mpsram::sram
