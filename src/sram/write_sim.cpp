#include "sram/write_sim.h"

#include <string>

#include "spice/measure.h"
#include "util/contracts.h"

namespace mpsram::sram {

namespace {

std::string idx_name(const char* base, int i)
{
    return std::string(base) + std::to_string(i);
}

} // namespace

Write_netlist build_write_netlist(const tech::Technology& tech,
                                  const Cell_electrical& cell,
                                  const Bitline_electrical& wires,
                                  const Array_config& cfg,
                                  const Write_timing& timing,
                                  const Netlist_options& nopts)
{
    util::expects(cfg.word_lines > 0, "array needs word lines");
    util::expects(wires.r_bl_cell > 0.0 && wires.c_bl_cell > 0.0,
                  "bit-line parasitics must be extracted first");
    util::expects(nopts.vss_rail_sharing >= 1.0,
                  "rail sharing factor must be >= 1");

    const int n = cfg.word_lines;
    const double vdd = tech.feol.vdd;

    Write_netlist net;
    net.timing = timing;
    net.vdd = vdd;
    net.word_lines = n;

    spice::Circuit& c = net.circuit;

    const spice::Node vdd_n = c.node("vdd");
    c.add_voltage_source("Vdd", vdd_n, spice::ground_node,
                         spice::Waveform::dc(vdd));

    const spice::Node prechb = c.node("prechb");
    c.add_voltage_source(
        "Vprechb", prechb, spice::ground_node,
        spice::Waveform::pulse(0.0, vdd, timing.t_precharge_off,
                               timing.edge_time));

    // Write enable (NMOS pull-down gate) and its complement (PMOS keeper).
    const spice::Node we = c.node("we");
    c.add_voltage_source(
        "Vwe", we, spice::ground_node,
        spice::Waveform::pulse(0.0, vdd, timing.t_drive_on,
                               timing.edge_time));
    const spice::Node web = c.node("web");
    c.add_voltage_source(
        "Vweb", web, spice::ground_node,
        spice::Waveform::pulse(vdd, 0.0, timing.t_drive_on,
                               timing.edge_time));

    const spice::Node wl = c.node("wl");
    c.add_voltage_source(
        "Vwl", wl, spice::ground_node,
        spice::Waveform::pulse(0.0, vdd, timing.t_drive_on,
                               timing.edge_time));

    net.bl = c.node("bl_h");
    net.blb = c.node("blb_h");

    // Precharge pair (released before the write).
    const double m_pre = precharge_multiplicity(n);
    c.add_mosfet("Mpre_bl", net.bl, prechb, vdd_n, cell.pull_up, m_pre);
    c.add_mosfet("Mpre_blb", net.blb, prechb, vdd_n, cell.pull_up, m_pre);
    const double c_pre = precharge_cap(n, cell);
    c.add_capacitor("Cpre_bl", net.bl, spice::ground_node, c_pre);
    c.add_capacitor("Cpre_blb", net.blb, spice::ground_node, c_pre);

    // Write driver, sized with the array like the precharge: NMOS yanks
    // BLB low, PMOS keeper holds BL high.
    c.add_mosfet("Mwr_pd", net.blb, we, spice::ground_node, cell.pull_down,
                 2.0 * m_pre);
    c.add_mosfet("Mwr_keep", net.bl, web, vdd_n, cell.pull_up, m_pre);

    spice::Node bl_prev = net.bl;
    spice::Node blb_prev = net.blb;
    spice::Node vss_prev = spice::ground_node;

    for (int i = 0; i < n; ++i) {
        const spice::Node bl_i = c.node(idx_name("bl", i));
        const spice::Node blb_i = c.node(idx_name("blb", i));
        const spice::Node vss_i = c.node(idx_name("vss", i));
        const spice::Node q_i = c.node(idx_name("q", i));
        const spice::Node qb_i = c.node(idx_name("qb", i));

        c.add_resistor(idx_name("Rbl", i), bl_prev, bl_i, wires.r_bl_cell);
        c.add_resistor(idx_name("Rblb", i), blb_prev, blb_i,
                       wires.r_blb_cell);
        c.add_resistor(idx_name("Rvss", i), vss_prev, vss_i,
                       wires.r_vss_cell / nopts.vss_rail_sharing);
        if (nopts.vss_strap_interval > 0 &&
            (i + 1) % nopts.vss_strap_interval == 0) {
            c.add_resistor(idx_name("Rstrap", i), vss_i, spice::ground_node,
                           nopts.vss_strap_resistance);
        }

        c.add_capacitor(idx_name("Cbl", i), bl_i, spice::ground_node,
                        wires.c_bl_cell);
        c.add_capacitor(idx_name("Cblb", i), blb_i, spice::ground_node,
                        wires.c_blb_cell);
        c.add_capacitor(idx_name("Cvss", i), vss_i, spice::ground_node,
                        wires.c_vss_cell);
        c.add_capacitor(idx_name("Cfe_bl", i), bl_i, spice::ground_node,
                        cell.bitline_junction_cap());
        c.add_capacitor(idx_name("Cfe_blb", i), blb_i, spice::ground_node,
                        cell.bitline_junction_cap());

        const bool accessed = (i == n - 1);
        const spice::Node wl_i = accessed ? wl : spice::ground_node;

        c.add_mosfet(idx_name("Mpu_q", i), q_i, qb_i, vdd_n, cell.pull_up,
                     cell.m_pull_up);
        c.add_mosfet(idx_name("Mpd_q", i), q_i, qb_i, vss_i, cell.pull_down,
                     cell.m_pull_down);
        c.add_mosfet(idx_name("Mpu_qb", i), qb_i, q_i, vdd_n, cell.pull_up,
                     cell.m_pull_up);
        c.add_mosfet(idx_name("Mpd_qb", i), qb_i, q_i, vss_i,
                     cell.pull_down, cell.m_pull_down);
        c.add_mosfet(idx_name("Mpg_bl", i), bl_i, wl_i, q_i, cell.pass_gate,
                     cell.m_pass_gate);
        c.add_mosfet(idx_name("Mpg_blb", i), blb_i, wl_i, qb_i,
                     cell.pass_gate, cell.m_pass_gate);

        c.add_capacitor(idx_name("Cq", i), q_i, spice::ground_node,
                        cell.storage_node_cap());
        c.add_capacitor(idx_name("Cqb", i), qb_i, spice::ground_node,
                        cell.storage_node_cap());

        // Every cell starts with q = 0; the accessed cell is written to 1.
        net.dc.forces.push_back({q_i, 0.0, 1.0});
        net.dc.forces.push_back({qb_i, vdd, 1.0});
        net.dc.initial_guesses.emplace_back(bl_i, vdd);
        net.dc.initial_guesses.emplace_back(blb_i, vdd);
        net.dc.initial_guesses.emplace_back(vss_i, 0.0);

        if (accessed) {
            net.q = q_i;
            net.qb = qb_i;
        }

        bl_prev = bl_i;
        blb_prev = blb_i;
        vss_prev = vss_i;
    }

    net.dc.initial_guesses.emplace_back(net.bl, vdd);
    net.dc.initial_guesses.emplace_back(net.blb, vdd);
    return net;
}

Write_result simulate_write(Write_netlist& net, const Write_options& opts)
{
    util::expects(opts.nominal_steps > 0, "steps must be positive");
    util::expects(opts.window > 0.0, "window must be positive");

    spice::Transient_options topts;
    topts.tstop = net.timing.wl_mid() + opts.window;
    topts.nominal_steps = opts.nominal_steps;
    topts.dc = net.dc;
    apply_sim_accuracy(topts, opts.accuracy);

    const std::vector<spice::Node> probes = {net.q, net.qb, net.bl,
                                             net.blb};
    const spice::Transient_result waves =
        spice::run_transient(net.circuit, probes, topts);

    Write_result r;
    r.steps = waves.steps();
    const std::string q_name = net.circuit.node_name(net.q);
    r.q_final = waves.final_value(q_name);
    r.qb_final = waves.final_value(net.circuit.node_name(net.qb));

    const double t_flip = spice::crossing_time(
        waves, q_name, 0.5 * net.vdd, net.timing.wl_mid());
    if (t_flip >= 0.0 && r.q_final > 0.5 * net.vdd) {
        r.flipped = true;
        r.tw = t_flip - net.timing.wl_mid();
    }
    return r;
}

} // namespace mpsram::sram
