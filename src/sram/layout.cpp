#include "sram/layout.h"

#include "util/contracts.h"

namespace mpsram::sram {

int victim_pair_index(const Array_config& cfg)
{
    util::expects(cfg.bl_pairs > 0, "array needs at least one pair");
    if (cfg.victim_pair >= 0) {
        util::expects(cfg.victim_pair < cfg.bl_pairs,
                      "victim pair out of range");
        return cfg.victim_pair;
    }
    return cfg.bl_pairs / 2;
}

std::string bl_net(int pair)
{
    return "BL" + std::to_string(pair);
}

std::string blb_net(int pair)
{
    return "BLB" + std::to_string(pair);
}

geom::Wire_array build_metal1_array(const tech::Technology& tech,
                                    const Array_config& cfg)
{
    util::expects(cfg.word_lines > 0, "array needs word lines");
    util::expects(cfg.bl_pairs > 0, "array needs bit-line pairs");

    const tech::Beol_layer& m1 = tech.metal1;
    const double length =
        static_cast<double>(cfg.word_lines) * tech.cell.cell_length;

    geom::Wire_array arr;
    std::size_t track = 0;
    for (int pair = 0; pair < cfg.bl_pairs; ++pair) {
        const std::string names[4] = {bl_net(pair), "VSS" + std::to_string(pair),
                                      blb_net(pair),
                                      "VDD" + std::to_string(pair)};
        for (const auto& net : names) {
            geom::Wire w;
            w.net = net;
            w.y_center = static_cast<double>(track) * m1.pitch;
            w.width = m1.nominal_width;
            w.length = length;
            arr.add(std::move(w));
            ++track;
        }
    }
    return arr;
}

Victim_wires find_victim_wires(const geom::Wire_array& arr,
                               const Array_config& cfg)
{
    const int pair = victim_pair_index(cfg);
    Victim_wires v;
    const auto bl = arr.find_net(bl_net(pair));
    const auto blb = arr.find_net(blb_net(pair));
    util::expects(bl.has_value() && blb.has_value(),
                  "victim pair not present in wire array");
    v.bl = *bl;
    v.blb = *blb;
    // The VSS rail of the pair sits immediately above the BL track.
    v.vss = v.bl + 1;
    util::expects(v.vss < arr.size() &&
                      arr[v.vss].net == "VSS" + std::to_string(pair),
                  "unexpected track order: VSS rail not adjacent to BL");
    return v;
}

} // namespace mpsram::sram
