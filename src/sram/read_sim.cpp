#include "sram/read_sim.h"

#include <algorithm>
#include <cmath>

#include "spice/measure.h"
#include "util/check.h"
#include "util/contracts.h"

namespace mpsram::sram {

Read_result simulate_read(Read_netlist& net, const Read_options& opts)
{
    spice::Transient_workspace workspace;
    return simulate_read(net, opts, workspace);
}

Read_result simulate_read(Read_netlist& net, const Read_options& opts,
                          spice::Transient_workspace& workspace)
{
    util::expects(opts.nominal_steps > 0, "steps must be positive");
    MPSRAM_REQUIRE(opts.min_window > 0.0 && opts.window_per_cell >= 0.0,
                   "read window options must define a positive window",
                   MPSRAM_VAL(opts.min_window),
                   MPSRAM_VAL(opts.window_per_cell));
    MPSRAM_REQUIRE(opts.max_retries >= 0, "retry count must be non-negative",
                   MPSRAM_VAL(opts.max_retries));

    const double t_ref = net.timing.wl_mid();
    double window =
        std::max(opts.min_window,
                 opts.window_per_cell * static_cast<double>(net.word_lines));

    const spice::Solver_policy solver =
        resolve_solver_policy(opts.accuracy, opts.solver);

    Read_result result;
    for (int attempt = 0; attempt <= opts.max_retries; ++attempt) {
        spice::Transient_options topts;
        topts.tstop = t_ref + window;
        topts.nominal_steps = opts.nominal_steps;
        topts.method = opts.method;
        topts.dc = net.dc;
        apply_sim_accuracy(topts, opts.accuracy);
        apply_solver_policy(topts, solver);

        const std::vector<spice::Node> probes = {
            net.bl_sense, net.blb_sense, net.bl_far, net.blb_far, net.wl,
            net.q, net.qb};
        spice::Transient_result waves =
            spice::run_transient(net.circuit, probes, topts, workspace);
        result.steps += waves.steps();

        const std::string bl_name = net.circuit.node_name(net.bl_sense);
        const std::string blb_name = net.circuit.node_name(net.blb_sense);
        const double t_cross = spice::differential_time(
            waves, bl_name, blb_name, net.sense_margin, t_ref);

        result.bl_final = waves.final_value(bl_name);
        result.blb_final = waves.final_value(blb_name);

        if (t_cross >= 0.0) {
            result.crossed = true;
            result.t_cross = t_cross;
            result.td = t_cross - t_ref;
            // Timing contract: a crossed read reports a finite delay
            // measured from wordline mid-rise, never a negative one.
            MPSRAM_ENSURE(std::isfinite(result.td) && result.td >= 0.0,
                          "read delay must be finite and non-negative",
                          MPSRAM_VAL(result.td), MPSRAM_VAL(t_cross),
                          MPSRAM_VAL(t_ref));
            return result;
        }
        window *= 2.0;
    }
    return result;  // never crossed: td = -1
}

} // namespace mpsram::sram
