// Column netlist generators (read and write paths).
//
// Builds the transistor-level circuit of one column pair of the array:
// every cell on the column as a full 6T latch (off cells load the bit
// lines with their pass-gate junctions and leakage), the bit lines and the
// VSS rail as distributed per-cell RC ladders, and the per-operation
// periphery — precharge/equalize devices for the read (sized with the
// array, Section II-C), an n-scaled write driver for the write — plus the
// control waveforms.
//
// The two operations share one column substrate (the per-cell ladders and
// cells); build_read_netlist and build_write_netlist differ only in the
// periphery and control schedule.  The accessed cell sits at the far end
// of the bit line (worst case); the sense/drive point is the near end.
// Quiet neighbor columns couple to the victim only through static rails in
// this track plan (BL and BLB are shielded by VSS/VDD), so a single column
// pair is electrically equivalent to the paper's 10-pair array — the 10
// pairs matter for extraction, which is where they are modeled.
#ifndef MPSRAM_SRAM_NETLIST_BUILDER_H
#define MPSRAM_SRAM_NETLIST_BUILDER_H

#include <vector>

#include "spice/analysis.h"
#include "spice/circuit.h"
#include "sram/bitline_model.h"
#include "sram/cell.h"
#include "sram/layout.h"

namespace mpsram::sram {

/// Control-signal schedule of the read operation.
struct Read_timing {
    double t_precharge_off = 30e-12;  ///< precharge releases [s]
    double t_wl_on = 60e-12;          ///< word line fires [s]
    double edge_time = 4e-12;         ///< control edge rise/fall [s]

    /// Reference instant for td: word line at 50%.
    double wl_mid() const { return t_wl_on + 0.5 * edge_time; }

    /// Netlist-reuse checks compare whole schedules (the sim contexts);
    /// keep this defaulted so new fields are picked up automatically.
    bool operator==(const Read_timing&) const = default;
};

/// Control schedule of the write: precharge releases, then the write
/// driver and word line fire together.  build_write_netlist requires
/// t_drive_on > t_precharge_off and edge_time > 0.
struct Write_timing {
    double t_precharge_off = 20e-12;
    double t_drive_on = 50e-12;  ///< write-enable and word line
    double edge_time = 4e-12;

    /// Reference instant for tw: word line at 50%.
    double wl_mid() const { return t_drive_on + 0.5 * edge_time; }

    /// See Read_timing::operator==.
    bool operator==(const Write_timing&) const = default;
};

/// Structural knobs of the generated netlist.
struct Netlist_options {
    /// Optional periodic VSS strap into the vertical power grid, every
    /// this many cells; 0 disables straps.  The paper's array behaves as
    /// end-tapped (its RVSS effect grows with n, Section III-A), so the
    /// default is no straps; the ablation bench sweeps this.
    int vss_strap_interval = 0;
    /// Resistance of one strap (via stack into the grid) [ohm].
    double vss_strap_resistance = 25.0;
    /// VSS return current spreads over the mirrored-row rails and the
    /// substrate/grid return path, not just the one drawn rail; the
    /// effective per-cell rail resistance is divided by this factor.
    /// Keeps the far cell's ground bounce survivable at n = 1024 while the
    /// rail resistance still scales with n, as the paper's simulations
    /// show.  The default reproduces the paper's Table III SADP row.
    double vss_rail_sharing = 8.0;

    /// See Read_timing::operator==.
    bool operator==(const Netlist_options&) const = default;
};

/// Per-cell wire-ladder devices of a built column netlist (read or write),
/// retained so a sweep can re-point the circuit at newly extracted
/// parasitics without rebuilding it (the MNA sparsity pattern only depends
/// on topology).  Index = cell row, near (sense/drive) end first.
struct Column_ladder {
    std::vector<spice::Resistor*> r_bl;
    std::vector<spice::Resistor*> r_blb;
    std::vector<spice::Resistor*> r_vss;
    std::vector<spice::Capacitor*> c_bl;
    std::vector<spice::Capacitor*> c_blb;
    std::vector<spice::Capacitor*> c_vss;
};

/// Historical name from the read-only days; both paths share the type.
using Read_ladder = Column_ladder;

/// A built read-path circuit plus the handles the measurement needs.
struct Read_netlist {
    spice::Circuit circuit;
    spice::Node bl_sense = 0;   ///< near-end BL (sense-amplifier side)
    spice::Node blb_sense = 0;
    spice::Node bl_far = 0;     ///< far-end BL (accessed-cell side)
    spice::Node blb_far = 0;
    spice::Node wl = 0;         ///< accessed word line
    spice::Node q = 0;          ///< accessed cell storage node (reads 0)
    spice::Node qb = 0;
    spice::Dc_options dc;       ///< latch initialization (forces + guesses)
    Read_timing timing;
    double vdd = 0.0;
    double sense_margin = 0.0;
    int word_lines = 0;
    Column_ladder ladder;       ///< wire devices, for update_read_netlist_wires
};

/// A built write-path circuit plus measurement handles.
struct Write_netlist {
    spice::Circuit circuit;
    spice::Node bl = 0;   ///< near-end BL (held high)
    spice::Node blb = 0;  ///< near-end BLB (driven low)
    spice::Node q = 0;    ///< target cell storage (flips 0 -> 1)
    spice::Node qb = 0;
    spice::Dc_options dc;
    Write_timing timing;
    double vdd = 0.0;
    int word_lines = 0;
    Column_ladder ladder;  ///< wire devices, for update_write_netlist_wires
};

/// The half-select (read-disturb) circuit is the read circuit under a
/// different drive schedule, so it shares the handle struct: same
/// periphery and substrate, but the precharge/equalizer stays on for the
/// whole window (this column is not the one being read) while the
/// accessed row's word line fires as in the read.  `timing.t_wl_on` and
/// `edge_time` apply; `t_precharge_off` is ignored (the precharge never
/// releases).  The disturb observable is the accessed cell's q bump.
using Disturb_netlist = Read_netlist;

/// Build the read netlist for the given electrical parameters.
Read_netlist build_read_netlist(const tech::Technology& tech,
                                const Cell_electrical& cell,
                                const Bitline_electrical& wires,
                                const Array_config& cfg,
                                const Read_timing& timing = Read_timing{},
                                const Netlist_options& nopts = Netlist_options{});

/// Build the half-select disturb netlist (see Disturb_netlist).
Disturb_netlist build_disturb_netlist(
    const tech::Technology& tech, const Cell_electrical& cell,
    const Bitline_electrical& wires, const Array_config& cfg,
    const Read_timing& timing = Read_timing{},
    const Netlist_options& nopts = Netlist_options{});

/// Build the write netlist: the same column substrate as the read path,
/// plus an n-scaled write driver (NMOS pull-down on BLB, PMOS keeper on
/// BL) instead of an active precharge-and-equalize.
Write_netlist build_write_netlist(const tech::Technology& tech,
                                  const Cell_electrical& cell,
                                  const Bitline_electrical& wires,
                                  const Array_config& cfg,
                                  const Write_timing& timing = Write_timing{},
                                  const Netlist_options& nopts = Netlist_options{});

/// Re-point an existing netlist's wire ladder at newly extracted
/// parasitics.  Only the per-cell R/C values change — cell devices, the
/// periphery, and the control waveforms stay as built — so the updated
/// netlist is device-for-device identical to a fresh build with the same
/// configuration and the new wires.  `nopts` must match the options the
/// netlist was built with.
void update_read_netlist_wires(Read_netlist& net,
                               const Bitline_electrical& wires,
                               const Netlist_options& nopts = Netlist_options{});
void update_write_netlist_wires(Write_netlist& net,
                                const Bitline_electrical& wires,
                                const Netlist_options& nopts = Netlist_options{});

} // namespace mpsram::sram

#endif // MPSRAM_SRAM_NETLIST_BUILDER_H
