// Read-path netlist generator.
//
// Builds the transistor-level circuit of one column pair of the array for
// a read operation: every cell on the column as a full 6T latch (off cells
// load the bit lines with their pass-gate junctions and leakage), the bit
// lines and the VSS rail as distributed per-cell RC ladders, the precharge
// and equalize devices (sized with the array, Section II-C), and the
// word-line / precharge control waveforms.
//
// The accessed cell sits at the far end of the bit line (worst case); the
// sense point is the near end, next to the precharge circuit.  Quiet
// neighbor columns couple to the victim only through static rails in this
// track plan (BL and BLB are shielded by VSS/VDD), so a single column pair
// is electrically equivalent to the paper's 10-pair array — the 10 pairs
// matter for extraction, which is where they are modeled.
#ifndef MPSRAM_SRAM_NETLIST_BUILDER_H
#define MPSRAM_SRAM_NETLIST_BUILDER_H

#include <vector>

#include "spice/analysis.h"
#include "spice/circuit.h"
#include "sram/bitline_model.h"
#include "sram/cell.h"
#include "sram/layout.h"

namespace mpsram::sram {

/// Control-signal schedule of the read operation.
struct Read_timing {
    double t_precharge_off = 30e-12;  ///< precharge releases [s]
    double t_wl_on = 60e-12;          ///< word line fires [s]
    double edge_time = 4e-12;         ///< control edge rise/fall [s]

    /// Reference instant for td: word line at 50%.
    double wl_mid() const { return t_wl_on + 0.5 * edge_time; }

    /// Netlist-reuse checks compare whole schedules (Read_sim_context);
    /// keep this defaulted so new fields are picked up automatically.
    bool operator==(const Read_timing&) const = default;
};

/// Structural knobs of the generated netlist.
struct Netlist_options {
    /// Optional periodic VSS strap into the vertical power grid, every
    /// this many cells; 0 disables straps.  The paper's array behaves as
    /// end-tapped (its RVSS effect grows with n, Section III-A), so the
    /// default is no straps; the ablation bench sweeps this.
    int vss_strap_interval = 0;
    /// Resistance of one strap (via stack into the grid) [ohm].
    double vss_strap_resistance = 25.0;
    /// VSS return current spreads over the mirrored-row rails and the
    /// substrate/grid return path, not just the one drawn rail; the
    /// effective per-cell rail resistance is divided by this factor.
    /// Keeps the far cell's ground bounce survivable at n = 1024 while the
    /// rail resistance still scales with n, as the paper's simulations
    /// show.  The default reproduces the paper's Table III SADP row.
    double vss_rail_sharing = 8.0;

    /// See Read_timing::operator==.
    bool operator==(const Netlist_options&) const = default;
};

/// Per-cell wire-ladder devices of a built read netlist, retained so a
/// sweep can re-point the circuit at newly extracted parasitics without
/// rebuilding it (the MNA sparsity pattern only depends on topology).
/// Index = cell row, sense end first.
struct Read_ladder {
    std::vector<spice::Resistor*> r_bl;
    std::vector<spice::Resistor*> r_blb;
    std::vector<spice::Resistor*> r_vss;
    std::vector<spice::Capacitor*> c_bl;
    std::vector<spice::Capacitor*> c_blb;
    std::vector<spice::Capacitor*> c_vss;
};

/// A built read-path circuit plus the handles the measurement needs.
struct Read_netlist {
    spice::Circuit circuit;
    spice::Node bl_sense = 0;   ///< near-end BL (sense-amplifier side)
    spice::Node blb_sense = 0;
    spice::Node bl_far = 0;     ///< far-end BL (accessed-cell side)
    spice::Node blb_far = 0;
    spice::Node wl = 0;         ///< accessed word line
    spice::Node q = 0;          ///< accessed cell storage node (reads 0)
    spice::Node qb = 0;
    spice::Dc_options dc;       ///< latch initialization (forces + guesses)
    Read_timing timing;
    double vdd = 0.0;
    double sense_margin = 0.0;
    int word_lines = 0;
    Read_ladder ladder;         ///< wire devices, for update_read_netlist_wires
};

/// Build the read netlist for the given electrical parameters.
Read_netlist build_read_netlist(const tech::Technology& tech,
                                const Cell_electrical& cell,
                                const Bitline_electrical& wires,
                                const Array_config& cfg,
                                const Read_timing& timing = Read_timing{},
                                const Netlist_options& nopts = Netlist_options{});

/// Re-point an existing netlist's wire ladder at newly extracted
/// parasitics.  Only the per-cell R/C values change — cell devices, the
/// precharge circuit, and the control waveforms stay as built — so the
/// updated netlist is device-for-device identical to a fresh
/// build_read_netlist with the same configuration and the new wires.
/// `nopts` must match the options the netlist was built with.
void update_read_netlist_wires(Read_netlist& net,
                               const Bitline_electrical& wires,
                               const Netlist_options& nopts = Netlist_options{});

} // namespace mpsram::sram

#endif // MPSRAM_SRAM_NETLIST_BUILDER_H
