// Metal1 track layout of the SRAM array (Fig. 1b / Fig. 3).
//
// The paper's high-density N10 cell routes horizontal metal1: each cell row
// contributes the track sequence [BL, VSS, BLB, VDD] at the layer pitch;
// stacking `bl_pairs` rows gives the array cross-section.  Bit lines run
// along x with length proportional to the number of word lines.  With this
// order every bit line is flanked by power rails (VSS one side, the
// neighbor row's VDD the other), and the SADP mandrel parity (odd tracks)
// lands exactly on the power rails, making bit lines spacer/gap-defined —
// both facts the paper relies on.
#ifndef MPSRAM_SRAM_LAYOUT_H
#define MPSRAM_SRAM_LAYOUT_H

#include <string>

#include "geom/wire_array.h"
#include "tech/technology.h"

namespace mpsram::sram {

struct Array_config {
    int word_lines = 64;  ///< n: cells along each bit line
    int bl_pairs = 10;    ///< fixed word length of the study
    int victim_pair = -1; ///< index of the analyzed pair; -1 = center
};

/// Resolved victim pair index.
int victim_pair_index(const Array_config& cfg);

/// Net names of the victim pair's wires.
std::string bl_net(int pair);
std::string blb_net(int pair);

/// Build the nominal metal1 wire array for the configuration: 4 tracks per
/// pair row, wires of length word_lines * cell_length.
geom::Wire_array build_metal1_array(const tech::Technology& tech,
                                    const Array_config& cfg);

/// Indices of the victim BL, its VSS rail neighbor, and the victim BLB in
/// an array built by build_metal1_array.
struct Victim_wires {
    std::size_t bl = 0;
    std::size_t vss = 0;
    std::size_t blb = 0;
};
Victim_wires find_victim_wires(const geom::Wire_array& arr,
                               const Array_config& cfg);

} // namespace mpsram::sram

#endif // MPSRAM_SRAM_LAYOUT_H
