// Re-entrant column-simulation context: one netlist plus one solver
// workspace, owned by a single worker of a sweep.
//
// The netlist is rebuilt only when the array configuration (word lines,
// timing, netlist options) changes; runs that differ only in extracted
// wire values re-point the existing ladder and keep the symbolic
// factorization.  Capacitor history is re-latched by each run's DC
// operating point, so reuse is bitwise identical to fresh builds (asserted
// by test_core_sweep and test_core_write_sweep).
//
// Column_sim_context is the shared skeleton; the read and write paths are
// thin trait instantiations (sram::Read_sim_context in read_sim.h,
// sram::Write_sim_context in write_sim.h).  A traits type binds:
//
//   Traits::Netlist / Timing / Options / Result
//   static Netlist build(tech, cell, wires, cfg, timing, nopts);
//   static void update_wires(Netlist&, wires, nopts);
//   static Result simulate(Netlist&, const Options&,
//                          spice::Transient_workspace&);
//
// The technology and cell handed to simulate() must stay the same objects
// (or at least the same values) across calls — the context caches device
// parameters derived from them.  One context must not be shared between
// threads; sweeps allocate one per Run_context::worker.
#ifndef MPSRAM_SRAM_SIM_CONTEXT_H
#define MPSRAM_SRAM_SIM_CONTEXT_H

#include <cstddef>
#include <memory>

#include "spice/workspace.h"
#include "sram/netlist_builder.h"

namespace mpsram::sram {

template <class Traits>
class Column_sim_context {
public:
    using Netlist = typename Traits::Netlist;
    using Timing = typename Traits::Timing;
    using Options = typename Traits::Options;
    using Result = typename Traits::Result;

    Result simulate(const tech::Technology& tech, const Cell_electrical& cell,
                    const Bitline_electrical& wires, const Array_config& cfg,
                    const Timing& timing = Timing{},
                    const Netlist_options& nopts = Netlist_options{},
                    const Options& opts = Options{})
    {
        if (reusable(cfg, timing, nopts)) {
            Traits::update_wires(*net_, wires, nopts);
        } else {
            net_ = std::make_unique<Netlist>(
                Traits::build(tech, cell, wires, cfg, timing, nopts));
            workspace_.invalidate();
            word_lines_ = cfg.word_lines;
            timing_ = timing;
            nopts_ = nopts;
            ++builds_;
        }
        return Traits::simulate(*net_, opts, workspace_);
    }

    /// Netlist (re)builds performed so far — the reuse observable.
    std::size_t netlist_builds() const { return builds_; }

private:
    bool reusable(const Array_config& cfg, const Timing& timing,
                  const Netlist_options& nopts) const
    {
        return net_ && word_lines_ == cfg.word_lines && timing_ == timing &&
               nopts_ == nopts;
    }

    std::unique_ptr<Netlist> net_;
    spice::Transient_workspace workspace_;
    int word_lines_ = -1;
    Timing timing_{};
    Netlist_options nopts_{};
    std::size_t builds_ = 0;
};

} // namespace mpsram::sram

#endif // MPSRAM_SRAM_SIM_CONTEXT_H
