// Accuracy policy for the SPICE-driven measurement paths.
//
// Every figure of the paper is dominated by transient cost, and almost all
// of that cost is spent resolving waveforms that are quiet for most of the
// window.  The policy picks the integration engine for a measurement:
//
//   reference  fixed nominal-step integration — the validation oracle.
//              Bitwise identical to the pre-policy behaviour; tests and
//              calibration runs pin this engine.
//   fast       adaptive-LTE stepping with the calibrated tolerances below —
//              the production default for sweeps, batch APIs, and the
//              MC / corner-search drivers.
//
// Calibration methodology (bench_perf_spice re-checks it on every run and
// fails if the budget is exceeded): the fast tolerances were chosen by
// sweeping lte_rel/lte_abs/lte_max_growth
// over the full Fig. 4 word-line set {16, 64, 256, 1024}
// for all three patterning options (EUV, SADP, LE3) and keeping the
// loosest setting whose adaptive td and tdp stay within 0.5% of the
// fixed-step reference on every row of Fig. 4 / Table II / Table III,
// while cutting the implicit-solve count by >= 2x on the 10x1024 rows.
// Step selection is input-deterministic (no timers, no thread state), so
// the determinism contract of the batch APIs is unchanged: results are
// bitwise identical at any thread count under either policy.
#ifndef MPSRAM_SRAM_SIM_ACCURACY_H
#define MPSRAM_SRAM_SIM_ACCURACY_H

#include <string_view>

#include "spice/analysis.h"

namespace mpsram::sram {

enum class Sim_accuracy {
    reference,  ///< fixed-step oracle
    fast,       ///< calibrated adaptive-LTE stepping (default)
};

/// Calibrated adaptive tolerances of the fast policy (methodology above).
inline constexpr double fast_lte_rel = 1e-3;
inline constexpr double fast_lte_abs = 1e-4;
inline constexpr double fast_lte_max_growth = 16.0;

/// Parse a policy token ('reference' or 'fast').  Any other value throws
/// util::Precondition_error naming the offending value and the accepted
/// set — a typo'd MPSRAM_SIM_ACCURACY pin must not silently run the wrong
/// engine.  Exposed separately from default_sim_accuracy() so the
/// rejection path is unit-testable (the default is memoized per process).
Sim_accuracy parse_sim_accuracy(std::string_view text);

/// Process-wide default policy: Sim_accuracy::fast, overridable once per
/// process with MPSRAM_SIM_ACCURACY=reference|fast so test and CI legs can
/// pin the reference engine without code changes.  Invalid values throw
/// via parse_sim_accuracy.
Sim_accuracy default_sim_accuracy();

/// Configure `topts` for the policy: `reference` forces fixed stepping,
/// `fast` enables adaptive LTE control with the calibrated tolerances.
void apply_sim_accuracy(spice::Transient_options& topts,
                        Sim_accuracy accuracy);

const char* to_string(Sim_accuracy accuracy);

} // namespace mpsram::sram

#endif // MPSRAM_SRAM_SIM_ACCURACY_H
