// Linear-solver policy for the SPICE-driven measurement paths.
//
// The second execution-policy axis next to Sim_accuracy: the accuracy
// tier decides WHICH time points are solved, the solver tier decides HOW
// each Newton linear system is solved (spice::Solver_policy — direct /
// bypass / iterative; full semantics in spice/analysis.h).
//
// Resolution contract (enforced in resolve_solver_policy, checked on all
// three workload paths — read, write, disturb):
//
//   * Sim_accuracy::reference is the bitwise oracle tier.  An EXPLICIT
//     request for a reuse tier (bypass/iterative) under reference is a
//     contract violation and throws — the caller asked for two
//     incompatible guarantees.  Reference always runs `direct`.
//   * A defaulted request (std::nullopt) resolves to `direct` under
//     reference and to default_solver_policy() under fast, so an
//     environment pin like MPSRAM_SOLVER_POLICY=iterative never breaks
//     the reference side of an agreement run.
//
// The reuse tiers evolve their factorization state deterministically
// from the solve inputs (no timers, no thread state), so the bitwise
// thread-count determinism contract holds per policy.
#ifndef MPSRAM_SRAM_SOLVER_POLICY_H
#define MPSRAM_SRAM_SOLVER_POLICY_H

#include <optional>
#include <string_view>

#include "spice/analysis.h"
#include "sram/sim_accuracy.h"

namespace mpsram::sram {

/// Parse a solver-tier token ('direct', 'bypass' or 'iterative').  Any
/// other value throws util::Precondition_error naming the offending value
/// and the accepted set.  Exposed separately from default_solver_policy()
/// so the rejection path is unit-testable (the default is memoized per
/// process).
spice::Solver_policy parse_solver_policy(std::string_view text);

/// Process-wide default solver tier under fast accuracy:
/// spice::Solver_policy::bypass, overridable once per process with
/// MPSRAM_SOLVER_POLICY=direct|bypass|iterative.  Invalid values throw
/// via parse_solver_policy.
spice::Solver_policy default_solver_policy();

/// Resolve a possibly-defaulted solver request against the accuracy tier
/// (contract above).  Throws util::Precondition_error on an explicit
/// reuse-tier request under Sim_accuracy::reference.
spice::Solver_policy resolve_solver_policy(
    Sim_accuracy accuracy, std::optional<spice::Solver_policy> requested);

/// Configure `topts` for the resolved policy (transient Newton only; the
/// DC operating point keeps its own options and stays direct).
void apply_solver_policy(spice::Transient_options& topts,
                         spice::Solver_policy policy);

const char* to_string(spice::Solver_policy policy);

} // namespace mpsram::sram

#endif // MPSRAM_SRAM_SOLVER_POLICY_H
