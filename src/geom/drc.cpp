#include "geom/drc.h"

#include <sstream>

namespace mpsram::geom {

std::string Drc_violation::describe() const
{
    std::ostringstream out;
    switch (kind) {
    case Drc_violation_kind::min_width:
        out << "min-width";
        break;
    case Drc_violation_kind::min_space:
        out << "min-space";
        break;
    case Drc_violation_kind::short_circuit:
        out << "short";
        break;
    }
    out << " at wire " << wire_index << ": " << actual * 1e9
        << " nm (rule " << required * 1e9 << " nm)";
    return out.str();
}

std::vector<Drc_violation> check_drc(const Wire_array& arr,
                                     const Drc_rules& rules)
{
    std::vector<Drc_violation> out;
    for (std::size_t i = 0; i < arr.size(); ++i) {
        if (arr[i].width < rules.min_width) {
            out.push_back({Drc_violation_kind::min_width, i, arr[i].width,
                           rules.min_width});
        }
    }
    for (std::size_t i = 0; i + 1 < arr.size(); ++i) {
        const double s = arr.spacing_above(i);
        if (s <= 0.0) {
            out.push_back({Drc_violation_kind::short_circuit, i, s, 0.0});
        } else if (s < rules.min_space) {
            out.push_back({Drc_violation_kind::min_space, i, s,
                           rules.min_space});
        }
    }
    return out;
}

} // namespace mpsram::geom
