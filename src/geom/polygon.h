// Simple polygon support for layout import/export style operations.
//
// The study itself works on Wire_array abstractions, but a layout library
// without polygons cannot round-trip GDS-like data; examples use this to
// emit the distorted metal1 layouts of Fig. 2 as rectangles.
#ifndef MPSRAM_GEOM_POLYGON_H
#define MPSRAM_GEOM_POLYGON_H

#include <vector>

#include "geom/point.h"

namespace mpsram::geom {

/// Simple (non-self-intersecting) polygon, vertices in order.
class Polygon {
public:
    Polygon() = default;
    explicit Polygon(std::vector<Point> vertices);

    static Polygon from_rect(const Rect& r);

    std::size_t size() const { return vertices_.size(); }
    const std::vector<Point>& vertices() const { return vertices_; }

    /// Signed area (positive for counter-clockwise winding).
    double signed_area() const;
    double area() const;

    Rect bounding_box() const;

    /// Point-in-polygon test (even-odd rule); boundary points count inside.
    bool contains(Point p) const;

    /// Translate by (dx, dy).
    Polygon translated(double dx, double dy) const;

private:
    std::vector<Point> vertices_;
};

} // namespace mpsram::geom

#endif // MPSRAM_GEOM_POLYGON_H
