#include "geom/polygon.h"

#include <cmath>
#include <limits>

#include "util/contracts.h"

namespace mpsram::geom {

Polygon::Polygon(std::vector<Point> vertices) : vertices_(std::move(vertices))
{
    util::expects(vertices_.size() >= 3,
                  "polygon needs at least three vertices");
}

Polygon Polygon::from_rect(const Rect& r)
{
    util::expects(r.valid(), "rect must be valid");
    return Polygon({{r.x0, r.y0}, {r.x1, r.y0}, {r.x1, r.y1}, {r.x0, r.y1}});
}

double Polygon::signed_area() const
{
    double acc = 0.0;
    for (std::size_t i = 0; i < vertices_.size(); ++i) {
        const Point& a = vertices_[i];
        const Point& b = vertices_[(i + 1) % vertices_.size()];
        acc += a.x * b.y - b.x * a.y;
    }
    return 0.5 * acc;
}

double Polygon::area() const
{
    return std::fabs(signed_area());
}

Rect Polygon::bounding_box() const
{
    util::expects(!vertices_.empty(), "bounding box of empty polygon");
    Rect r{std::numeric_limits<double>::infinity(),
           std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity()};
    for (const Point& p : vertices_) {
        r.x0 = std::min(r.x0, p.x);
        r.y0 = std::min(r.y0, p.y);
        r.x1 = std::max(r.x1, p.x);
        r.y1 = std::max(r.y1, p.y);
    }
    return r;
}

bool Polygon::contains(Point p) const
{
    // Even-odd ray casting with an explicit on-edge check so boundary
    // points are reported as inside deterministically.
    bool inside = false;
    const std::size_t n = vertices_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const Point& a = vertices_[i];
        const Point& b = vertices_[(i + 1) % n];

        // On-edge check via collinearity + box containment.
        const double cross =
            (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
        if (std::fabs(cross) < 1e-30 &&
            p.x >= std::min(a.x, b.x) && p.x <= std::max(a.x, b.x) &&
            p.y >= std::min(a.y, b.y) && p.y <= std::max(a.y, b.y)) {
            return true;
        }

        const bool crosses = (a.y > p.y) != (b.y > p.y);
        if (crosses) {
            const double x_at =
                a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
            if (x_at > p.x) inside = !inside;
        }
    }
    return inside;
}

Polygon Polygon::translated(double dx, double dy) const
{
    std::vector<Point> moved = vertices_;
    for (Point& p : moved) {
        p.x += dx;
        p.y += dy;
    }
    return Polygon(std::move(moved));
}

} // namespace mpsram::geom
