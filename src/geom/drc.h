// Design-rule style checks on realized wire arrays.
//
// A multiple-patterning corner can push geometry outside manufacturable
// bounds (pinched wires, merged neighbors).  The study prices such geometry
// electrically, but flags it so the Monte-Carlo engine can report how often
// a process assumption breaks the layout outright.
#ifndef MPSRAM_GEOM_DRC_H
#define MPSRAM_GEOM_DRC_H

#include <cstddef>
#include <string>
#include <vector>

#include "geom/wire_array.h"

namespace mpsram::geom {

enum class Drc_violation_kind {
    min_width,   ///< wire narrower than the rule
    min_space,   ///< spacing below the rule
    short_circuit, ///< spacing <= 0: wires merged
};

struct Drc_violation {
    Drc_violation_kind kind;
    std::size_t wire_index;  ///< offending wire (lower index for spacing)
    double actual;           ///< measured value [m]
    double required;         ///< rule value [m]
    std::string describe() const;
};

struct Drc_rules {
    double min_width = 0.0;
    double min_space = 0.0;
};

/// Check every wire and every adjacent pair; returns all violations.
std::vector<Drc_violation> check_drc(const Wire_array& arr,
                                     const Drc_rules& rules);

} // namespace mpsram::geom

#endif // MPSRAM_GEOM_DRC_H
