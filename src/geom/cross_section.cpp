#include "geom/cross_section.h"

#include <cmath>

#include "util/contracts.h"

namespace mpsram::geom {

Cross_section::Cross_section(double top_width, double bottom_width,
                             double height)
    : top_w_(top_width), bottom_w_(bottom_width), height_(height)
{
    util::expects(top_width > 0.0, "cross-section top width must be positive");
    util::expects(bottom_width > 0.0,
                  "cross-section bottom width must be positive");
    util::expects(height > 0.0, "cross-section height must be positive");
}

Cross_section Cross_section::from_taper(double drawn_width, double height,
                                        double taper_angle)
{
    util::expects(drawn_width > 0.0, "drawn width must be positive");
    util::expects(height > 0.0, "layer thickness must be positive");
    util::expects(taper_angle >= 0.0 && taper_angle < 0.5,
                  "taper angle must be in [0, 0.5) rad");
    const double top = drawn_width + 2.0 * height * std::tan(taper_angle);
    return Cross_section(top, drawn_width, height);
}

double Cross_section::width_at(double t) const
{
    util::expects(t >= 0.0 && t <= 1.0,
                  "relative height must be in [0,1]");
    return bottom_w_ + t * (top_w_ - bottom_w_);
}

double Cross_section::sidewall_length() const
{
    const double run = 0.5 * (top_w_ - bottom_w_);
    return std::sqrt(height_ * height_ + run * run);
}

Cross_section Cross_section::inset(double t) const
{
    util::expects(t >= 0.0, "liner thickness must be non-negative");
    const double top = top_w_ - 2.0 * t;
    const double bottom = bottom_w_ - 2.0 * t;
    const double height = height_ - t;
    util::expects(top > 0.0 && bottom > 0.0 && height > 0.0,
                  "liner consumes the whole conductor");
    return Cross_section(top, bottom, height);
}

} // namespace mpsram::geom
