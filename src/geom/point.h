// Basic 2-D primitives for layout geometry.  The routing direction of the
// metal1 layer studied in the paper is horizontal (x); track positions are
// measured along y.
#ifndef MPSRAM_GEOM_POINT_H
#define MPSRAM_GEOM_POINT_H

#include <algorithm>

namespace mpsram::geom {

struct Point {
    double x = 0.0;
    double y = 0.0;

    friend constexpr bool operator==(const Point&, const Point&) = default;
};

constexpr Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
constexpr Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
constexpr Point operator*(double s, Point p) { return {s * p.x, s * p.y}; }

/// Axis-aligned rectangle; degenerate (zero-area) rectangles are allowed.
struct Rect {
    double x0 = 0.0;
    double y0 = 0.0;
    double x1 = 0.0;
    double y1 = 0.0;

    constexpr double width() const { return x1 - x0; }
    constexpr double height() const { return y1 - y0; }
    constexpr double area() const { return width() * height(); }
    constexpr Point center() const { return {0.5 * (x0 + x1), 0.5 * (y0 + y1)}; }

    constexpr bool valid() const { return x1 >= x0 && y1 >= y0; }

    constexpr bool contains(Point p) const
    {
        return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
    }

    constexpr bool overlaps(const Rect& o) const
    {
        return x0 < o.x1 && o.x0 < x1 && y0 < o.y1 && o.y0 < y1;
    }

    /// Intersection; empty (invalid) if the rectangles do not overlap.
    constexpr Rect intersect(const Rect& o) const
    {
        return {std::max(x0, o.x0), std::max(y0, o.y0),
                std::min(x1, o.x1), std::min(y1, o.y1)};
    }

    friend constexpr bool operator==(const Rect&, const Rect&) = default;
};

} // namespace mpsram::geom

#endif // MPSRAM_GEOM_POINT_H
