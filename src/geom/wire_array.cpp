#include "geom/wire_array.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace mpsram::geom {

Wire_array::Wire_array(std::vector<Wire> wires) : wires_(std::move(wires))
{
    for (const Wire& w : wires_) check(w);
    std::sort(wires_.begin(), wires_.end(),
              [](const Wire& a, const Wire& b) { return a.y_center < b.y_center; });
    for (std::size_t i = 1; i < wires_.size(); ++i) {
        util::expects(wires_[i].y_center > wires_[i - 1].y_center,
                      "wire tracks must have distinct y positions");
    }
}

void Wire_array::add(Wire w)
{
    check(w);
    util::expects(wires_.empty() || w.y_center > wires_.back().y_center,
                  "Wire_array::add expects ascending y positions");
    wires_.push_back(std::move(w));
}

void Wire_array::check(const Wire& w) const
{
    util::expects(w.width > 0.0, "wire width must be positive");
    util::expects(w.length > 0.0, "wire length must be positive");
    util::expects(!w.net.empty(), "wire net label must be non-empty");
}

const Wire& Wire_array::operator[](std::size_t i) const
{
    util::expects(i < wires_.size(), "wire index out of range");
    return wires_[i];
}

Wire& Wire_array::operator[](std::size_t i)
{
    util::expects(i < wires_.size(), "wire index out of range");
    return wires_[i];
}

double Wire_array::spacing_above(std::size_t i) const
{
    util::expects(i + 1 < wires_.size(), "no wire above");
    const Wire& lo = wires_[i];
    const Wire& hi = wires_[i + 1];
    return (hi.y_center - 0.5 * hi.width) - (lo.y_center + 0.5 * lo.width);
}

double Wire_array::spacing_below(std::size_t i) const
{
    util::expects(i > 0 && i < wires_.size(), "no wire below");
    return spacing_above(i - 1);
}

std::optional<std::size_t> Wire_array::find_net(const std::string& net,
                                                std::size_t start) const
{
    for (std::size_t i = start; i < wires_.size(); ++i) {
        if (wires_[i].net == net) return i;
    }
    return std::nullopt;
}

std::vector<std::size_t> Wire_array::all_with_net(const std::string& net) const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < wires_.size(); ++i) {
        if (wires_[i].net == net) out.push_back(i);
    }
    return out;
}

std::size_t Wire_array::center_wire_of_net(const std::string& net) const
{
    util::expects(!wires_.empty(), "center_wire_of_net on empty array");
    const double mid =
        0.5 * (wires_.front().y_center + wires_.back().y_center);

    std::optional<std::size_t> best;
    double best_dist = 0.0;
    for (std::size_t i = 0; i < wires_.size(); ++i) {
        if (wires_[i].net != net) continue;
        const double d = std::fabs(wires_[i].y_center - mid);
        if (!best || d < best_dist) {
            best = i;
            best_dist = d;
        }
    }
    util::expects(best.has_value(), "net not present in wire array");
    return *best;
}

bool Wire_array::interior(std::size_t i) const
{
    return i > 0 && i + 1 < wires_.size();
}

} // namespace mpsram::geom
