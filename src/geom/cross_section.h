// Trapezoidal conductor cross-section.
//
// Damascene copper wires are etched as trenches that flare toward the top:
// the drawn CD is realized at the trench bottom and the top is wider by
// 2 * height * tan(taper).  The paper's LPE tool takes "layer thickness,
// tapering angles" as inputs.  The cross-section drives both the resistance
// (conducting area) and the sidewall coupling capacitance: because
// neighboring trenches flare toward each other, the facing gap closes
// super-linearly at the top when drawn spacing shrinks — the mechanism that
// makes the LE3 worst-case Cbl penalty so much larger than EUV's.
#ifndef MPSRAM_GEOM_CROSS_SECTION_H
#define MPSRAM_GEOM_CROSS_SECTION_H

namespace mpsram::geom {

/// Isosceles trapezoid: `top_width` at the top, `bottom_width` at the
/// bottom, vertical extent `height`.  For damascene metal, top >= bottom.
class Cross_section {
public:
    Cross_section(double top_width, double bottom_width, double height);

    /// Build from a drawn (bottom) width, layer thickness, and sidewall
    /// taper angle measured from vertical (radians); the top widens by
    /// 2 * height * tan(taper).
    static Cross_section from_taper(double drawn_width, double height,
                                    double taper_angle);

    double top_width() const { return top_w_; }
    double bottom_width() const { return bottom_w_; }
    double height() const { return height_; }

    /// Width at a relative height t in [0,1] (0 = bottom).
    double width_at(double t) const;

    double mean_width() const { return 0.5 * (top_w_ + bottom_w_); }
    double area() const { return mean_width() * height_; }

    /// Length of one slanted sidewall.
    double sidewall_length() const;

    /// Shrink uniformly by a liner/barrier of thickness `t` on both
    /// sidewalls and the bottom (not the top, which is capped after CMP).
    /// Returns the remaining conductor core; throws if nothing remains.
    Cross_section inset(double t) const;

private:
    double top_w_;
    double bottom_w_;
    double height_;
};

} // namespace mpsram::geom

#endif // MPSRAM_GEOM_CROSS_SECTION_H
