// Parallel-wire model of one routed BEOL layer.
//
// The paper's experiment operates on arrays of horizontal metal1 wires (bit
// lines and power rails); every patterning engine consumes a nominal
// Wire_array and produces a "realized" one with perturbed widths and track
// positions.  Wires run along x; `y_center` is the track position.
#ifndef MPSRAM_GEOM_WIRE_ARRAY_H
#define MPSRAM_GEOM_WIRE_ARRAY_H

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace mpsram::geom {

/// Mask color for multi-patterning decomposition.  `unassigned` is the
/// state before decomposition; single-patterning flows use `mask_a` only.
enum class Mask_color { unassigned, mask_a, mask_b, mask_c };

/// SADP line class: printed mandrel line, or line formed in the gap
/// between the spacers of two adjacent mandrels.
enum class Sadp_class { none, mandrel, gap };

/// One wire (full-length routing track segment) on a layer.
struct Wire {
    std::string net;      ///< net label, e.g. "BL3", "VSS", "VDD"
    double y_center = 0;  ///< track position [m]
    double width = 0;     ///< drawn or realized width [m]
    double length = 0;    ///< extent along the routing direction [m]
    Mask_color color = Mask_color::unassigned;
    Sadp_class sadp = Sadp_class::none;
};

/// Sorted (ascending y) array of parallel wires with neighbor queries.
///
/// Invariants: wires are strictly ordered by y_center and have positive
/// width and length.  Overlap is *not* an invariant — a patterning corner
/// may legitimately produce a short (see geom::check_drc), and the
/// extractor must be able to see that geometry to price it.
class Wire_array {
public:
    Wire_array() = default;

    /// Wires may be given in any order; they are sorted on construction.
    explicit Wire_array(std::vector<Wire> wires);

    void add(Wire w);

    std::size_t size() const { return wires_.size(); }
    bool empty() const { return wires_.empty(); }

    const Wire& operator[](std::size_t i) const;
    Wire& operator[](std::size_t i);

    const std::vector<Wire>& wires() const { return wires_; }

    /// Edge-to-edge spacing between wire i and wire i+1 (can be negative
    /// when a variation corner makes the wires touch or overlap).
    double spacing_above(std::size_t i) const;

    /// Edge-to-edge spacing between wire i and wire i-1.
    double spacing_below(std::size_t i) const;

    /// Index of the first wire whose net matches, searching from
    /// `start`; nullopt if absent.
    std::optional<std::size_t> find_net(const std::string& net,
                                        std::size_t start = 0) const;

    /// Indices of all wires whose net matches.
    std::vector<std::size_t> all_with_net(const std::string& net) const;

    /// Index of the wire nearest to the array's vertical midpoint with the
    /// given net — the "victim" selection rule used throughout the study
    /// (center wires are free of edge effects, cf. the paper's fixed
    /// 10-bit-line-pair arrangement).
    std::size_t center_wire_of_net(const std::string& net) const;

    /// True when i is an interior wire (has both neighbors).
    bool interior(std::size_t i) const;

private:
    void check(const Wire& w) const;

    std::vector<Wire> wires_;
};

} // namespace mpsram::geom

#endif // MPSRAM_GEOM_WIRE_ARRAY_H
