#include "bench_driver.h"

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/serialize.h"
#include "sram/solver_policy.h"
#include "util/contracts.h"
#include "util/numeric.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace mpsram::bench {

namespace {

constexpr sram::Sim_accuracy policies[] = {sram::Sim_accuracy::fast,
                                           sram::Sim_accuracy::reference};

} // namespace

double seconds_of(const std::chrono::steady_clock::duration& d)
{
    return std::chrono::duration<double>(d).count();
}

std::vector<int> default_thread_counts()
{
    std::vector<int> counts = {1, 2, 4};
    const int hw = util::Thread_pool::hardware_threads();
    if (hw > 4) counts.push_back(hw);
    return counts;
}

Scaling_outcome run_thread_scaling(const Scaling_config& cfg)
{
    util::expects(static_cast<bool>(cfg.run), "scaling config needs a run");
    util::expects(!cfg.thread_counts.empty() && cfg.thread_counts[0] == 1,
                  "the scaling grid must start at the serial baseline");

    std::cout << cfg.workload << " walls ("
              << util::Thread_pool::hardware_threads()
              << " hardware threads)\n";
    std::vector<std::string> headers = {"threads", "policy", "wall [s]"};
    if (cfg.sims_per_row > 0.0) headers.push_back("sims/s");
    headers.insert(headers.end(), {"thread speedup", "adaptive speedup",
                                   "bitwise == serial"});
    util::Table table(std::move(headers));

    Scaling_outcome outcome;
    core::Result_table serial_rows[2];

    for (const int threads : cfg.thread_counts) {
        Scaling_point p;
        p.threads = threads;
        for (int pi = 0; pi < 2; ++pi) {
            const auto t0 = std::chrono::steady_clock::now();
            const core::Result_table rows = cfg.run(threads, policies[pi]);
            p.wall_s[pi] = seconds_of(std::chrono::steady_clock::now() - t0);
            outcome.rows = rows.size();
            if (cfg.sims_per_row > 0.0) {
                p.sims_per_s[pi] = cfg.sims_per_row *
                                   static_cast<double>(rows.size()) /
                                   p.wall_s[pi];
            }
            if (threads == 1) {
                serial_rows[pi] = rows;
            } else {
                p.identical[pi] = rows == serial_rows[pi];
            }
        }
        outcome.points.push_back(p);

        for (int pi = 0; pi < 2; ++pi) {
            std::vector<std::string> row = {
                std::to_string(threads), sram::to_string(policies[pi]),
                util::fmt_fixed(p.wall_s[pi], 3)};
            if (cfg.sims_per_row > 0.0) {
                row.push_back(util::fmt_fixed(p.sims_per_s[pi], 2));
            }
            row.insert(
                row.end(),
                {util::fmt_fixed(
                     outcome.points.front().wall_s[pi] / p.wall_s[pi], 2) +
                     "x",
                 util::fmt_fixed(p.wall_s[1] / p.wall_s[0], 2) + "x",
                 p.identical[pi] ? "yes" : "NO"});
            table.add_row(std::move(row));
        }
    }
    std::cout << table.render() << '\n';

    for (const Scaling_point& p : outcome.points) {
        outcome.all_identical =
            outcome.all_identical && p.identical[0] && p.identical[1];
    }
    if (!outcome.all_identical) {
        std::cout << "ERROR: parallel results diverged from serial — the\n"
                     "determinism contract is broken.\n";
    }
    return outcome;
}

namespace {

/// The (nominal, varied, percent) view of a sweep row; how every
/// agreement-gated metric reports.
struct Gated_row {
    double nominal = 0.0;
    double varied = 0.0;
    double percent = 0.0;
    bool has_percent = true;
};

Gated_row gated_row(const core::Row_value& row)
{
    using core::Disturb_row;
    using core::Nominal_td_row;
    using core::Nominal_tw_row;
    using core::Read_row;
    using core::Write_row;
    if (const auto* r = std::get_if<Read_row>(&row)) {
        return {r->td_nominal, r->td_varied, r->tdp_percent, true};
    }
    if (const auto* w = std::get_if<Write_row>(&row)) {
        return {w->tw_nominal, w->tw_varied, w->twp_percent, true};
    }
    if (const auto* d = std::get_if<Disturb_row>(&row)) {
        return {d->v_bump_nominal, d->v_bump_varied, d->disturb_percent,
                true};
    }
    if (const auto* t = std::get_if<Nominal_td_row>(&row)) {
        return {t->td_simulation, t->td_simulation, 0.0, false};
    }
    if (const auto* t = std::get_if<Nominal_tw_row>(&row)) {
        return {t->tw_simulation, t->tw_simulation, 0.0, false};
    }
    util::expects(false, "agreement gate: unsupported row type");
    return {};
}

} // namespace

void accumulate_agreement(Agreement& a, const core::Result_table& reference,
                          const core::Result_table& fast)
{
    util::expects(reference.metric() == fast.metric() &&
                      reference.size() == fast.size(),
                  "agreement gate: mismatched result tables");
    for (std::size_t i = 0; i < reference.size(); ++i) {
        const Gated_row ref = gated_row(reference.raw(i));
        const Gated_row fst = gated_row(fast.raw(i));
        a.max_rel = std::max({a.max_rel,
                              util::rel_diff(ref.nominal, fst.nominal),
                              util::rel_diff(ref.varied, fst.varied)});
        if (ref.has_percent) {
            a.max_points = std::max(a.max_points,
                                    std::fabs(ref.percent - fst.percent));
        }
    }
}

Agreement run_option_agreement(
    const std::function<core::Query(tech::Patterning_option)>& make_query,
    std::optional<spice::Solver_policy> fast_solver)
{
    util::expects(static_cast<bool>(make_query),
                  "agreement gate needs a query factory");
    Agreement agreement;
    const core::Study_session session;
    for (const auto option : tech::all_patterning_options) {
        const core::Query query = make_query(option);
        core::Query fast_query =
            core::Query(query).with_accuracy(sram::Sim_accuracy::fast);
        if (fast_solver) fast_query.with_solver(*fast_solver);
        accumulate_agreement(
            agreement,
            session.run(core::Query(query).with_accuracy(
                sram::Sim_accuracy::reference)),
            session.run(fast_query));
    }
    return agreement;
}

void report_agreement(const Agreement& a, const std::string& quantity)
{
    std::cout << "Adaptive-vs-reference agreement:\n  max |" << quantity
              << "| deviation " << util::fmt_fixed(100.0 * a.max_rel, 4)
              << "% , max penalty deviation "
              << util::fmt_fixed(a.max_points, 4) << " points ("
              << (a.within_budget() ? "within" : "OUTSIDE")
              << " the 0.5% calibration budget)\n";
    if (!a.within_budget()) {
        std::cout << "ERROR: the adaptive engine left the 0.5% calibration\n"
                     "budget — retune sram::fast_lte_* (see sim_accuracy.h).\n";
    }
}

void print_step_table(const spice::Step_stats steps[2])
{
    util::Table table({"policy", "accepted", "lte rejected",
                       "newton rejected", "total solves", "newton iters",
                       "lu factors", "bypass hits"});
    for (int pi = 0; pi < 2; ++pi) {
        table.add_row({sram::to_string(policies[pi]),
                       std::to_string(steps[pi].accepted),
                       std::to_string(steps[pi].lte_rejected),
                       std::to_string(steps[pi].newton_rejected),
                       std::to_string(steps[pi].total_attempts()),
                       std::to_string(steps[pi].newton_iterations),
                       std::to_string(steps[pi].lu_factorizations),
                       std::to_string(steps[pi].bypass_hits)});
    }
    std::cout << table.render() << '\n';
}

Cache_smoke run_cache_smoke(
    const std::function<core::Result_table(const core::Study_session&)>& run,
    const std::string& cache_dir)
{
    util::expects(static_cast<bool>(run), "cache smoke needs a workload");
    util::expects(!cache_dir.empty(), "cache smoke needs a directory");
    std::filesystem::remove_all(cache_dir);

    core::Study_options opts;
    opts.cache.mode = core::Cache_mode::readwrite;
    opts.cache.directory = cache_dir;

    Cache_smoke smoke;
    std::string cold_dump;
    {
        const core::Study_session cold(tech::n10(), opts);
        const auto t0 = std::chrono::steady_clock::now();
        const core::Result_table table = run(cold);
        smoke.cold_s = seconds_of(std::chrono::steady_clock::now() - t0);
        smoke.cold_stores = cold.cache_store_count();
        cold_dump = core::json_of_result_table(table).dump();
    }
    {
        const core::Study_session warm(tech::n10(), opts);
        const auto t0 = std::chrono::steady_clock::now();
        const core::Result_table table = run(warm);
        smoke.warm_s = seconds_of(std::chrono::steady_clock::now() - t0);
        smoke.warm_hits = warm.cache_hit_count();
        smoke.warm_misses = warm.cache_miss_count();
        // Dump-string equality is the bitwise check: the canonical
        // encoding round-trips every double (NaN included) through its
        // bit pattern, so equal dumps means equal bits.
        smoke.identical = core::json_of_result_table(table).dump() ==
                          cold_dump;
        smoke.spice_skipped = warm.corner_search_count() == 0 &&
                              warm.surface_fit_count() == 0;
    }

    std::cout << "Cold-then-warm cache smoke (" << cache_dir << "):\n"
              << "  cold " << util::fmt_fixed(smoke.cold_s, 3) << " s ("
              << smoke.cold_stores << " entries stored), warm "
              << util::fmt_fixed(smoke.warm_s, 3) << " s ("
              << smoke.warm_hits << " hits, " << smoke.warm_misses
              << " misses)\n"
              << "  warm table bitwise identical: "
              << (smoke.identical ? "yes" : "NO")
              << ", SPICE work skipped: "
              << (smoke.spice_skipped ? "yes" : "NO") << "\n";
    if (!smoke.passed()) {
        std::cout << "ERROR: the warm run was not served bitwise-identically "
                     "from the cache\n";
    }
    return smoke;
}

std::vector<std::string> cache_smoke_fields(const Cache_smoke& s)
{
    return {"\"cache_smoke\": {\"cold_s\": " + std::to_string(s.cold_s) +
            ", \"warm_s\": " + std::to_string(s.warm_s) +
            ", \"warm_hits\": " + std::to_string(s.warm_hits) +
            ", \"warm_misses\": " + std::to_string(s.warm_misses) +
            ", \"cold_stores\": " + std::to_string(s.cold_stores) +
            ", \"identical\": " + (s.identical ? "true" : "false") +
            ", \"spice_skipped\": " + (s.spice_skipped ? "true" : "false") +
            ", \"passed\": " + (s.passed() ? "true" : "false") + "},"};
}

void write_bench_json(const Scaling_config& cfg,
                      const Scaling_outcome& outcome, const Agreement* a,
                      const spice::Step_stats* steps, int max_word_lines,
                      const std::vector<std::string>& extra_fields)
{
    // The fast legs run the process-default solver tier; reference legs
    // always resolve to the direct oracle (sram/solver_policy.h).
    const spice::Transient_options default_topts;
    std::ofstream json(cfg.json_path);
    json << "{\n"
         << "  \"bench\": \"" << cfg.bench_name << "\",\n"
         << "  \"workload\": \"" << cfg.workload << "\",\n"
         << "  \"metadata\": {\"solver_policy_fast\": \""
         << sram::to_string(sram::resolve_solver_policy(
                sram::Sim_accuracy::fast, std::nullopt))
         << "\", \"solver_policy_reference\": \""
         << sram::to_string(sram::resolve_solver_policy(
                sram::Sim_accuracy::reference, std::nullopt))
         << "\", \"integration_method\": \""
         << (default_topts.method ==
                     spice::Integration_method::trapezoidal
                 ? "trapezoidal"
                 : "backward_euler")
         << "\", \"sim_accuracy\": \""
         << sram::to_string(sram::default_sim_accuracy())
         << "\", \"cache_mode\": \""
         // The effective process-wide mode: without a configured
         // directory the cache never engages regardless of MPSRAM_CACHE.
         << core::to_string(core::default_cache_dir()
                                ? core::default_cache_mode()
                                : core::Cache_mode::off)
         << "\", \"cache_hits\": " << core::process_cache_stats().hits
         << ", \"cache_misses\": " << core::process_cache_stats().misses
         << ", \"cache_stores\": " << core::process_cache_stats().stores
         << "},\n"
         << "  \"rows\": " << outcome.rows << ",\n"
         << "  \"max_word_lines\": " << max_word_lines << ",\n"
         << "  \"hardware_threads\": "
         << util::Thread_pool::hardware_threads() << ",\n"
         << "  \"deterministic_across_threads\": "
         << (outcome.all_identical ? "true" : "false") << ",\n";
    if (a) {
        json << "  \"agreement\": {\"max_rel\": " << a->max_rel
             << ", \"max_points\": " << a->max_points
             << ", \"within_budget\": "
             << (a->within_budget() ? "true" : "false") << "},\n";
    }
    if (steps) {
        json << "  \"step_counts_nominal\": {\n"
             << "    \"word_lines\": " << max_word_lines << ",\n"
             << "    \"fast\": {\"accepted\": " << steps[0].accepted
             << ", \"lte_rejected\": " << steps[0].lte_rejected
             << ", \"newton_rejected\": " << steps[0].newton_rejected
             << ", \"newton_iterations\": " << steps[0].newton_iterations
             << ", \"lu_factorizations\": " << steps[0].lu_factorizations
             << ", \"bypass_hits\": " << steps[0].bypass_hits << "},\n"
             << "    \"reference\": {\"accepted\": " << steps[1].accepted
             << ", \"lte_rejected\": " << steps[1].lte_rejected
             << ", \"newton_rejected\": " << steps[1].newton_rejected
             << ", \"newton_iterations\": " << steps[1].newton_iterations
             << ", \"lu_factorizations\": " << steps[1].lu_factorizations
             << ", \"bypass_hits\": " << steps[1].bypass_hits << "}\n"
             << "  },\n";
    }
    for (const std::string& field : extra_fields) {
        json << "  " << field << "\n";
    }
    json << "  \"results\": [\n";
    for (std::size_t i = 0; i < outcome.points.size(); ++i) {
        const Scaling_point& p = outcome.points[i];
        json << "    {\"threads\": " << p.threads
             << ", \"wall_s_fast\": " << p.wall_s[0]
             << ", \"wall_s_reference\": " << p.wall_s[1];
        if (cfg.sims_per_row > 0.0) {
            json << ", \"sims_per_s_fast\": " << p.sims_per_s[0]
                 << ", \"sims_per_s_reference\": " << p.sims_per_s[1];
        }
        json << ", \"adaptive_speedup\": " << p.wall_s[1] / p.wall_s[0]
             << "}" << (i + 1 < outcome.points.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "Wrote " << cfg.json_path << '\n';
}

} // namespace mpsram::bench
