// Extension experiment: million-sample yield through the surrogate engine
// tier (Tdp_engine::surrogate) — the bench that backs the tier's three
// promises with measured numbers and gates on them:
//
//   1. Throughput: a 10^6-sample mc_tdp distribution through the
//      calibrated response surface vs the extrapolated cost of the SPICE
//      engine (measured on a smaller same-seed run).  Gate: >= 100x
//      including the calibration wall (only enforced from 10^5 samples
//      up — below that the one-time calibration dominates by design).
//   2. Fidelity: same-seed surrogate-vs-SPICE mean/sigma agreement.  The
//      two engines draw IDENTICAL process samples (mc/surrogate.h), so
//      the comparison cancels Monte-Carlo noise and the gate bounds pure
//      model error: |d mean| <= 1% of sigma and |d sigma| <= 1% relative,
//      each plus twice its own paired-sample standard error (the
//      deviation estimates themselves wobble with the SPICE leg's size).
//   3. Tails: importance-sampled sigma-level quantiles vs the exact
//      order statistic of a large stored surrogate run — same surface on
//      both sides, so the gate (3-sigma quantile within 2%) checks the
//      defensive-mixture IS machinery, with the ESS diagnostic gated at
//      10% of the draw count.
//
// The thread-scaling grid runs the streaming (memory-flat) surrogate
// workload on a PRE-CALIBRATED session — calibration is paid before the
// grid so the timings measure the pure sample path — and the driver's
// bitwise determinism check covers the 1/2/4/hw-thread contract.
// Emits BENCH_yield.json.
//
//   $ ./bench_ext_yield [samples] [spice_samples]
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_driver.h"
#include "core/session.h"
#include "mc/surrogate.h"
#include "pattern/engine.h"
#include "util/numeric.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace mpsram;

/// Same-seed model-error measurement: the engines draw identical process
/// samples, so the paired per-sample differences carry the surrogate's
/// model error alone.  The deviations still wobble with the finite SPICE
/// sample count, so each gate is the 1% budget plus twice the deviation's
/// own standard error (delta method on the paired samples) — a larger
/// SPICE leg tightens the gate toward a pure 1%.
struct Model_error {
    double mean_err_sigma = 0.0;  ///< |d mean| / sigma_spice
    double sigma_err_rel = 0.0;   ///< |sigma_surr / sigma_spice - 1|
    double mean_gate = 0.0;       ///< 0.01 + 2 SE of mean_err_sigma
    double sigma_gate = 0.0;      ///< 0.01 + 2 SE of sigma_err_rel
    bool within() const
    {
        return mean_err_sigma <= mean_gate && sigma_err_rel <= sigma_gate;
    }
};

Model_error model_error(const std::vector<double>& spice,
                        const std::vector<double>& surr,
                        const util::Sample_summary& sx,
                        const util::Sample_summary& ss)
{
    const std::size_t count = spice.size();
    Model_error e;
    e.mean_err_sigma = std::fabs(ss.mean - sx.mean) / sx.stddev;
    e.sigma_err_rel = std::fabs(ss.stddev / sx.stddev - 1.0);
    // SE of the mean deviation: std of the paired differences / sqrt(n);
    // SE of the sigma ratio: std of the paired centered-square
    // differences / (2 sigma_x^2 sqrt(n)), the first-order expansion of
    // sigma_s / sigma_x about 1.
    double var_diff = 0.0;
    double var_sq = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        const double diff = (surr[i] - ss.mean) - (spice[i] - sx.mean);
        var_diff += diff * diff;
        const double sq = (surr[i] - ss.mean) * (surr[i] - ss.mean) -
                          (spice[i] - sx.mean) * (spice[i] - sx.mean);
        var_sq += sq * sq;
    }
    var_diff /= static_cast<double>(count);
    // Center the squared differences about their mean (the variance gap).
    const double mean_sq = ss.stddev * ss.stddev - sx.stddev * sx.stddev;
    var_sq = var_sq / static_cast<double>(count) - mean_sq * mean_sq;
    const double root_n = std::sqrt(static_cast<double>(count));
    e.mean_gate =
        0.01 + 2.0 * std::sqrt(var_diff) / (sx.stddev * root_n);
    e.sigma_gate = 0.01 + 2.0 * std::sqrt(std::max(var_sq, 0.0)) /
                              (2.0 * sx.stddev * sx.stddev * root_n);
    return e;
}

/// Everything measured for one patterning option.
struct Option_report {
    std::string name;
    double calib_wall_s = 0.0;
    double holdout_rel = 0.0;
    int design_points = 0;
    double spice_per_sample_s = 0.0;
    double surrogate_wall_s = 0.0;  ///< streaming run at `samples`
    Model_error err;
    double speedup = 0.0;  ///< extrapolated SPICE / surrogate
    double speedup_with_calibration = 0.0;
    mc::Tail_result tail;
    double tail3_ref = 0.0;  ///< exact 3-sigma quantile (stored run)
    double tail3_err = 0.0;  ///< relative IS-vs-exact deviation
};

double timed(const std::function<void()>& work)
{
    const auto t0 = std::chrono::steady_clock::now();
    work();
    return bench::seconds_of(std::chrono::steady_clock::now() - t0);
}

} // namespace

int main(int argc, char** argv)
{
    const long samples = argc > 1 ? std::atol(argv[1]) : 1000000;
    const int spice_samples = argc > 2 ? std::atoi(argv[2]) : 500;
    if (samples <= 0 || spice_samples <= 1) {
        std::cerr << "usage: bench_ext_yield [samples>0] [spice_samples>1]\n";
        return 2;
    }
    constexpr int n = 64;
    const int hw = util::Thread_pool::hardware_threads();
    // The speedup gate only binds once the calibration wall amortizes.
    const bool gate_speedup = samples >= 100000;

    std::cout << "Extension: surrogate-tier yield, 10x" << n << ", "
              << samples << " surrogate samples vs " << spice_samples
              << " SPICE samples per option\n\n";

    std::vector<Option_report> reports;
    bool agreement_ok = true;
    bool tails_ok = true;
    bool speedup_ok = true;
    {
        const core::Study_session session;
        const core::Runner_options parallel{hw};
        for (const auto option : tech::all_patterning_options) {
            Option_report rep;
            rep.name = std::string(tech::to_string(option));

            // --- calibration (timed; the one-time cost of the tier) ----------
            std::shared_ptr<const analytic::Yield_surfaces> surfaces;
            rep.calib_wall_s = timed([&] {
                surfaces = session.calibrated_surfaces(
                    core::Metric::mc_tdp, option, n, -1.0, std::nullopt,
                    std::nullopt, parallel);
            });
            rep.holdout_rel = surfaces->holdout_rel;
            rep.design_points = surfaces->design_points;

            // --- the SPICE leg: same-seed exact reference --------------------
            core::Query qx(core::Metric::mc_tdp);
            qx.with_case({option, n})
                .with_tdp_engine(core::Tdp_engine::spice);
            qx.mc.samples = spice_samples;
            qx.mc.runner = parallel;
            mc::Tdp_distribution spice_dist;
            const double spice_wall = timed([&] {
                spice_dist = session.run(qx).as<mc::Tdp_distribution>(0);
            });
            rep.spice_per_sample_s = spice_wall / spice_samples;

            // --- same-seed surrogate: pure model error -----------------------
            core::Query qs = qx;
            qs.with_tdp_engine(core::Tdp_engine::surrogate);
            const auto surr_small =
                session.run(qs).as<mc::Tdp_distribution>(0);
            rep.err = model_error(spice_dist.tdp, surr_small.tdp,
                                  spice_dist.summary, surr_small.summary);
            agreement_ok = agreement_ok && rep.err.within();

            // --- the full-sample streaming run (timed) -----------------------
            core::Query qf = qs;
            qf.mc.samples = static_cast<int>(samples);
            qf.mc.store_samples = false;
            rep.surrogate_wall_s =
                timed([&] { (void)session.run(qf); });
            const double spice_extrapolated =
                rep.spice_per_sample_s * static_cast<double>(samples);
            rep.speedup = spice_extrapolated / rep.surrogate_wall_s;
            rep.speedup_with_calibration =
                spice_extrapolated /
                (rep.surrogate_wall_s + rep.calib_wall_s);
            speedup_ok = speedup_ok && (!gate_speedup ||
                                        rep.speedup_with_calibration >= 100.0);

            // --- importance-sampled tails vs the exact order statistic -------
            const auto engine =
                pattern::make_engine(option, session.technology());
            const mc::Distribution_options base;  // engine-default seed
            rep.tail =
                mc::importance_tail(*engine, surfaces->metric, base,
                                    mc::Tail_options{});
            core::Query qr = qs;
            qr.mc.samples =
                static_cast<int>(std::min<long>(samples, 200000));
            auto ref = session.run(qr).as<mc::Tdp_distribution>(0);
            rep.tail3_ref = util::quantile(ref.tdp, util::normal_cdf(3.0));
            rep.tail3_err =
                std::fabs(rep.tail.quantiles[0] - rep.tail3_ref) /
                std::fabs(rep.tail3_ref);
            tails_ok = tails_ok && rep.tail3_err <= 0.02 &&
                       rep.tail.ess >=
                           0.1 * static_cast<double>(rep.tail.samples);

            reports.push_back(std::move(rep));
        }
    }

    // --- the science tables --------------------------------------------------
    {
        util::Table table({"option", "calib [s]", "holdout", "spice [s/sample]",
                           "surrogate [s]", "speedup", "incl calib"});
        for (const auto& r : reports) {
            table.add_row({r.name, util::fmt_fixed(r.calib_wall_s, 2),
                           util::fmt_fixed(100.0 * r.holdout_rel, 2) + "%",
                           util::fmt_fixed(r.spice_per_sample_s, 4),
                           util::fmt_fixed(r.surrogate_wall_s, 3),
                           util::fmt_fixed(r.speedup, 0) + "x",
                           util::fmt_fixed(r.speedup_with_calibration, 0) +
                               "x"});
        }
        std::cout << table.render() << '\n';
    }
    {
        util::Table table({"option", "|d mean|/sigma", "gate",
                           "|d sigma| rel", "gate", "tail 3s exact",
                           "tail 3s IS", "IS err", "ESS/samples"});
        for (const auto& r : reports) {
            table.add_row(
                {r.name,
                 util::fmt_fixed(100.0 * r.err.mean_err_sigma, 3) + "%",
                 util::fmt_fixed(100.0 * r.err.mean_gate, 2) + "%",
                 util::fmt_fixed(100.0 * r.err.sigma_err_rel, 3) + "%",
                 util::fmt_fixed(100.0 * r.err.sigma_gate, 2) + "%",
                 util::fmt_fixed(r.tail3_ref, 3) + "%",
                 util::fmt_fixed(r.tail.quantiles[0], 3) + "%",
                 util::fmt_fixed(100.0 * r.tail3_err, 3) + "%",
                 util::fmt_fixed(r.tail.ess /
                                     static_cast<double>(r.tail.samples),
                                 2)});
        }
        std::cout << table.render() << '\n'
                  << "Same-seed engines draw identical process samples, so\n"
                     "the mean/sigma deviations are pure surrogate model\n"
                     "error, gated at 1% plus twice the deviation's own\n"
                     "standard error (paired-sample delta method); the tail\n"
                     "comparison checks the importance sampler against the\n"
                     "exact order statistic of the same surface (gated at\n"
                     "2% on the 3-sigma quantile).\n\n";
    }

    // --- thread scaling: streaming surrogate on a pre-calibrated session -----
    // One shared session, both accuracy policies calibrated up front: the
    // grid then times the pure sample path (draw + quadratic eval +
    // streaming fold), and the driver checks the runs are bitwise
    // identical to the serial baseline at every thread count.
    const core::Study_session grid_session;
    for (const auto accuracy :
         {sram::Sim_accuracy::fast, sram::Sim_accuracy::reference}) {
        (void)grid_session.calibrated_surfaces(
            core::Metric::mc_tdp, tech::Patterning_option::le3, n, -1.0,
            accuracy, std::nullopt, core::Runner_options{hw});
    }
    bench::Scaling_config cfg;
    cfg.bench_name = "bench_ext_yield";
    cfg.workload = "le3_surrogate_streaming_yield";
    cfg.json_path = "BENCH_yield.json";
    cfg.sims_per_row = static_cast<double>(samples);
    cfg.run = [samples, &grid_session](int threads,
                                       sram::Sim_accuracy accuracy) {
        core::Query q(core::Metric::mc_tdp);
        q.with_case({tech::Patterning_option::le3, n})
            .with_tdp_engine(core::Tdp_engine::surrogate)
            .with_accuracy(accuracy);
        q.mc.samples = static_cast<int>(samples);
        q.mc.store_samples = false;
        q.mc.runner = core::Runner_options{threads};
        return grid_session.run(q);
    };
    const bench::Scaling_outcome outcome = bench::run_thread_scaling(cfg);

    // --- verdict + JSON ------------------------------------------------------
    if (!agreement_ok) {
        std::cout << "ERROR: surrogate-vs-SPICE agreement left the 1% "
                     "mean/sigma budget.\n";
    }
    if (!tails_ok) {
        std::cout << "ERROR: importance-sampled 3-sigma quantile off by "
                     "> 2% (or ESS collapsed below 10%).\n";
    }
    if (!speedup_ok) {
        std::cout << "ERROR: surrogate speedup (incl. calibration) under "
                     "the 100x gate.\n";
    }

    std::ostringstream options_json;
    options_json << "\"yield_options\": [";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const auto& r = reports[i];
        options_json << (i ? ", " : "") << "{\"option\": \"" << r.name
                     << "\", \"calibration_wall_s\": " << r.calib_wall_s
                     << ", \"holdout_rel\": " << r.holdout_rel
                     << ", \"design_points\": " << r.design_points
                     << ", \"spice_per_sample_s\": " << r.spice_per_sample_s
                     << ", \"surrogate_wall_s\": " << r.surrogate_wall_s
                     << ", \"speedup\": " << r.speedup
                     << ", \"speedup_with_calibration\": "
                     << r.speedup_with_calibration
                     << ", \"mean_err_sigma\": " << r.err.mean_err_sigma
                     << ", \"mean_gate\": " << r.err.mean_gate
                     << ", \"sigma_err_rel\": " << r.err.sigma_err_rel
                     << ", \"sigma_gate\": " << r.err.sigma_gate
                     << ", \"tail_sigma_levels\": [3, 4, 5, 6]"
                     << ", \"tail_quantiles\": [";
        for (std::size_t k = 0; k < r.tail.quantiles.size(); ++k) {
            options_json << (k ? ", " : "") << r.tail.quantiles[k];
        }
        options_json << "], \"tail_ess\": " << r.tail.ess
                     << ", \"tail3_exact\": " << r.tail3_ref
                     << ", \"tail3_err_rel\": " << r.tail3_err << "}";
    }
    options_json << "],";
    bench::write_bench_json(
        cfg, outcome, nullptr, nullptr, n,
        {"\"samples\": " + std::to_string(samples) + ",",
         "\"spice_samples\": " + std::to_string(spice_samples) + ",",
         "\"speedup_gated\": " +
             std::string(gate_speedup ? "true" : "false") + ",",
         options_json.str()});

    const bool ok = outcome.all_identical && agreement_ok && tails_ok &&
                    speedup_ok;
    return ok ? 0 : 1;
}
