// Shared perf-bench driver: the thread-scaling / calibration harness that
// bench_perf_spice, bench_ext_write_impact and bench_ext_disturb all run.
//
// A bench describes its workload as a query factory (fresh
// core::Study_session per measured run so memos cannot leak work between
// runs); the driver owns everything the three benches used to duplicate:
//
//   - the threads x {fast, reference} scaling grid with the
//     parallel-vs-serial bitwise determinism check (Result_table ==),
//   - the adaptive-vs-reference agreement gate (<= 0.5% on every row),
//   - the fast/reference step-counter table, and
//   - the uniform BENCH_*.json emitter the CI artifacts track.
#ifndef MPSRAM_BENCH_BENCH_DRIVER_H
#define MPSRAM_BENCH_BENCH_DRIVER_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/query.h"
#include "core/result_cache.h"
#include "core/session.h"
#include "spice/analysis.h"
#include "sram/bitline_model.h"
#include "sram/sim_accuracy.h"

namespace mpsram::bench {

/// Wall-clock seconds of a steady-clock duration.
double seconds_of(const std::chrono::steady_clock::duration& d);

/// The thread counts of the scaling grid: {1, 2, 4} plus the hardware
/// thread count when larger.
std::vector<int> default_thread_counts();

struct Scaling_config {
    std::string bench_name;  ///< e.g. "bench_perf_spice"
    std::string workload;    ///< e.g. "le3_worst_case_read_fig4_sweep"
    std::string json_path;   ///< e.g. "BENCH_spice.json"
    std::vector<int> thread_counts = default_thread_counts();
    /// Transients per result row, for the sims/s column; 0 omits it.
    double sims_per_row = 0.0;
    /// Run the workload once on a FRESH session: the driver times this
    /// for every (threads, policy) grid point.
    std::function<core::Result_table(int threads, sram::Sim_accuracy)> run;
};

struct Scaling_point {
    int threads = 0;
    double wall_s[2] = {0.0, 0.0};  ///< indexed {fast, reference}
    double sims_per_s[2] = {0.0, 0.0};
    bool identical[2] = {true, true};  ///< bitwise == the serial run
};

struct Scaling_outcome {
    std::vector<Scaling_point> points;
    bool all_identical = true;
    std::size_t rows = 0;  ///< result rows per run
};

/// Run the grid, check determinism, print the scaling table.
Scaling_outcome run_thread_scaling(const Scaling_config& cfg);

/// Adaptive-vs-reference agreement: max relative deviation of the
/// absolute times/voltages and max absolute deviation of the penalty
/// percentages, folded over row pairs of (reference, fast) tables.
struct Agreement {
    double max_rel = 0.0;     ///< of nominal/varied absolute values
    double max_points = 0.0;  ///< of the penalty percentages
    bool within_budget() const { return max_rel <= 5e-3 && max_points <= 0.5; }
};

/// Fold one (reference, fast) result-table pair into the gate.  Supports
/// the sweep row types (Read_row, Write_row, Disturb_row, Nominal_td_row,
/// Nominal_tw_row); both tables must share metric and size.
void accumulate_agreement(Agreement& a, const core::Result_table& reference,
                          const core::Result_table& fast);

/// The whole per-option gate in one call: one session, every patterning
/// option, `make_query(option)` executed under both policies (the
/// session's nominal memos are keyed per policy, so the engines never
/// cross results) and every row pair folded into the returned gate.
/// `fast_solver` pins the linear-solver tier of the FAST leg only — the
/// reference leg must stay defaulted (it resolves to direct; an explicit
/// reuse tier under reference throws by the solver_policy.h contract), so
/// this is how the bypass/iterative tiers are gated against the oracle.
Agreement run_option_agreement(
    const std::function<core::Query(tech::Patterning_option)>& make_query,
    std::optional<spice::Solver_policy> fast_solver = std::nullopt);

/// Print the agreement verdict (quantity is e.g. "td"/"tw"/"v_bump").
void report_agreement(const Agreement& a, const std::string& quantity);

/// Print the fast/reference step-counter table of one nominal run.
void print_step_table(const spice::Step_stats steps[2]);

/// Step counters of one nominal transient of the context's operation
/// (Context = Read/Write/Disturb_sim_context) at `word_lines`, fast in
/// steps[0] and reference in steps[1], on a default session's nominal
/// wires — so the measured column follows the session's victim-pair
/// policy instead of restating it per bench.
template <class Context>
void measure_nominal_steps(int word_lines, spice::Step_stats steps[2])
{
    const core::Study_session session;
    const tech::Technology& t = session.technology();
    const auto cell = sram::Cell_electrical::n10(t.feol);
    sram::Array_config cfg = session.options().array;
    cfg.word_lines = word_lines;
    const geom::Wire_array nominal =
        session.decomposed_array(tech::Patterning_option::euv, word_lines);
    const sram::Bitline_electrical wires =
        sram::roll_up_nominal(session.extractor(), nominal, t, cfg);
    constexpr sram::Sim_accuracy policies[] = {sram::Sim_accuracy::fast,
                                               sram::Sim_accuracy::reference};
    for (int pi = 0; pi < 2; ++pi) {
        typename Context::Options opts;
        opts.accuracy = policies[pi];
        Context sim;
        steps[pi] = sim.simulate(t, cell, wires, cfg,
                                 typename Context::Timing{},
                                 sram::Netlist_options{}, opts)
                        .steps;
    }
}

/// Cold-then-warm result-cache smoke (core/result_cache.h): wipe
/// `cache_dir`, run `run` on a fresh readwrite-cached session (cold,
/// stores every artifact), run it again on a second fresh session (warm)
/// and check the warm run (a) returned a bitwise-identical table, (b)
/// was served from disk (hits > 0), and (c) skipped the simulation work
/// entirely — zero corner searches and surface fits on the warm session.
struct Cache_smoke {
    double cold_s = 0.0;
    double warm_s = 0.0;
    std::uint64_t warm_hits = 0;
    std::uint64_t warm_misses = 0;
    std::uint64_t cold_stores = 0;
    bool identical = false;      ///< warm table bitwise == cold table
    bool spice_skipped = false;  ///< warm corner searches + fits == 0
    bool passed() const
    {
        return identical && spice_skipped && warm_hits > 0;
    }
};

/// Run the smoke and print its verdict.  `run` must execute the same
/// deterministic workload on whichever session it is given.
Cache_smoke run_cache_smoke(
    const std::function<core::Result_table(const core::Study_session&)>& run,
    const std::string& cache_dir);

/// Preformatted extra-field lines for write_bench_json.
std::vector<std::string> cache_smoke_fields(const Cache_smoke& s);

/// Emit the uniform BENCH_*.json: scaling points, determinism flag,
/// agreement, step counters, plus optional preformatted extra top-level
/// fields (each line a complete `"key": value,` fragment).  `a` and
/// `steps` are nullable: a bench whose workload has no adaptive-vs-
/// reference gate (e.g. a sample-engine comparison gated on its own
/// agreement numbers) or no per-transient step counters simply omits
/// those objects from the JSON.
void write_bench_json(const Scaling_config& cfg,
                      const Scaling_outcome& outcome, const Agreement* a,
                      const spice::Step_stats* steps, int max_word_lines,
                      const std::vector<std::string>& extra_fields = {});

} // namespace mpsram::bench

#endif // MPSRAM_BENCH_BENCH_DRIVER_H
