// Ablation: how much of Table II's formula-vs-simulation deviation is the
// lumped-RC assumption?
//
// Compares three nominal-td models across the DOE sizes:
//   1. the paper's lumped formula (eq. 4),
//   2. a distributed-aware variant where the wire R sees only half the
//      wire C (first-order Elmore correction for a line driven from one
//      end and sensed at the other),
//   3. full SPICE simulation.
//
// The paper attributes the Table II gap to exactly this lumped treatment
// (Section III-A); the Elmore variant should land between 1 and 3.
#include <iostream>

#include "core/study.h"
#include "util/table.h"

namespace {

double td_elmore(const mpsram::analytic::Td_params& p, int n)
{
    // Split eq. (4): front-end resistance drives the full capacitance;
    // the wire resistance drives only ~half the wire capacitance (Elmore
    // weight of a distributed RC line) plus the far-end load.
    const double nn = static_cast<double>(n);
    const double c_wire = nn * p.c_bl_cell;
    const double c_fe_total = nn * p.c_fe + p.c_pre(n);
    const double r_wire = nn * p.r_bl_cell;
    return p.a * (p.r_fe * (c_wire + c_fe_total) +
                  r_wire * (0.5 * c_wire + 0.5 * c_fe_total));
}

} // namespace

int main()
{
    using namespace mpsram;

    core::Variability_study study;

    std::cout << "Ablation: lumped vs distributed bit-line treatment\n\n";
    util::Table table({"Array size", "lumped (eq.4)", "Elmore variant",
                       "SPICE", "lumped err", "Elmore err"});

    for (int n : {16, 64, 256, 1024}) {
        const analytic::Td_params p = study.formula_params(n);
        const double lumped = analytic::td_lumped(p, n);
        const double elmore = td_elmore(p, n);
        const double sim = study.nominal_td(n).td_simulation;
        table.add_row({
            "10x" + std::to_string(n),
            util::fmt_time(lumped, 2),
            util::fmt_time(elmore, 2),
            util::fmt_time(sim, 2),
            util::fmt_percent(lumped / sim - 1.0, 1),
            util::fmt_percent(elmore / sim - 1.0, 1),
        });
    }

    std::cout << table.render() << '\n'
              << "Note: eq. (4) charges the full wire C through the full\n"
                 "wire R, which OVERweights the wire term; the remaining\n"
                 "underestimate versus SPICE comes from device nonlinearity\n"
                 "and control-edge overhead, not from the RC treatment.\n";
    return 0;
}
