// Reproduces Table I: worst-case variability corner per patterning option
// and its impact on the victim bit line's R and C.
//
// Paper reference (10 nm node, 3-sigma CD 3 nm, SADP spacer 1.5 nm,
// LE3 overlay 8 nm):
//   LELELE: Cbl +61.56%, Rbl -10.36%
//   SADP:   Cbl  +4.01%, Rbl -18.19%
//   EUV:    Cbl  +6.65%, Rbl -10.36%
#include <iostream>

#include "core/session.h"
#include "util/table.h"

namespace {

struct Paper_row {
    mpsram::tech::Patterning_option option;
    double cbl;
    double rbl;
};

constexpr Paper_row paper_rows[] = {
    {mpsram::tech::Patterning_option::le3, 61.56, -10.36},
    {mpsram::tech::Patterning_option::sadp, 4.01, -18.19},
    {mpsram::tech::Patterning_option::euv, 6.65, -10.36},
};

} // namespace

int main()
{
    using namespace mpsram;

    core::Study_session session;

    std::cout << "Table I: worst-case variability per patterning option\n"
              << "(3s CD = 3 nm; SADP spacer 3s = 1.5 nm; LE3 OL 3s = 8 nm)\n\n";

    util::Table table({"Pat. option", "Worst corner", "Cbl impact",
                       "Rbl impact", "paper Cbl", "paper Rbl",
                       "Rvss impact"});

    // The whole table is one query: Metric::worst_case_rc over the
    // option axis, corner enumerations on every core.
    const auto rows = session.run(
        core::Query(core::Metric::worst_case_rc)
            .over_options(tech::all_patterning_options)
            .on(core::Runner_options::parallel()));

    for (std::size_t i = 0; i < std::size(paper_rows); ++i) {
        const Paper_row& ref = paper_rows[i];
        const auto& row = rows.as<core::Worst_case_row>(i);
        table.add_row({std::string(tech::to_string(ref.option)),
                       row.corner,
                       util::fmt_percent(row.cbl_percent / 100.0, 2),
                       util::fmt_percent(row.rbl_percent / 100.0, 2),
                       util::fmt_percent(ref.cbl / 100.0, 2),
                       util::fmt_percent(ref.rbl / 100.0, 2),
                       util::fmt_percent(row.vss_r_percent / 100.0, 2)});
    }

    std::cout << table.render() << '\n';
    std::cout << "Expected shape: LE3 an order of magnitude above SADP/EUV in\n"
                 "Cbl impact; SADP's Rbl drop ~2x the others with its Rvss\n"
                 "anti-correlated (rising); EUV and LE3 share the same Rbl\n"
                 "change (same +3 nm CD on the victim wire).\n";
    return 0;
}
