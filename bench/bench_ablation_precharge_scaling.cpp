// Ablation: sensitivity of the tdp(n) trend to the precharge scaling law
// Cpre(n).
//
// The paper notes Cpre "is a function of n according to the scaling
// formula that is used" and that the almost-constant a*RFE*Cpre term bends
// the tdp trend.  This bench evaluates the EUV and LE3 worst-case tdp via
// the formula under three scaling laws and reports where the EUV penalty
// crosses zero.
#include <iostream>

#include "core/study.h"
#include "util/table.h"

int main()
{
    using namespace mpsram;

    core::Variability_study study;

    // Worst-case variation factors per option (n-independent).
    const auto wc_le3 =
        study.worst_case_full(tech::Patterning_option::le3, 64);
    const auto wc_euv =
        study.worst_case_full(tech::Patterning_option::euv, 64);

    const sram::Cell_electrical cell =
        sram::Cell_electrical::n10(study.technology().feol);
    const double cj = cell.c_junction;

    struct Law {
        const char* name;
        std::function<double(int)> c_pre;
    };
    const Law laws[] = {
        {"constant (3.5 junctions)", [cj](int) { return 3.5 * cj; }},
        {"banked (default)", [cell](int n) { return sram::precharge_cap(n, cell); }},
        {"linear in n", [cj](int n) { return cj * (2.0 + 1.5 * n / 16.0); }},
    };

    std::cout << "Ablation: precharge scaling law vs tdp(n) trend "
                 "(formula)\n\n";
    util::Table table({"Cpre law", "option", "tdp@16", "tdp@64", "tdp@256",
                       "tdp@1024"});

    for (const Law& law : laws) {
        for (const auto* wc : {&wc_le3, &wc_euv}) {
            const bool is_le3 = (wc == &wc_le3);
            std::vector<std::string> row{
                law.name, is_le3 ? "LELELE" : "EUV"};
            for (int n : {16, 64, 256, 1024}) {
                analytic::Td_params p = study.formula_params(n);
                p.c_pre = law.c_pre;
                row.push_back(util::fmt_fixed(
                    analytic::tdp_percent(p, n, wc->variation.r_factor,
                                          wc->variation.c_factor),
                    2));
            }
            table.add_row(std::move(row));
        }
    }

    std::cout << table.render() << '\n'
              << "Expected: a constant Cpre preserves the rise-then-fall\n"
                 "trend; a Cpre that grows linearly with n keeps diluting\n"
                 "the wire term and pushes the EUV zero-crossing out.\n";
    return 0;
}
