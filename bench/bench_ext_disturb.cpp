// Extension experiment: half-select read-disturb under multiple-patterning
// variability — the first workload registered purely through the metric
// registry (Metric::disturb), with no study method behind it.
//
// When a read fires a word line, the 0-storing cells of the row's other
// columns see their pass gates open against precharged bit lines: the
// storage node bumps up toward the trip point.  The figure of merit is
// the peak bump v_bump (nominal wires vs the worst-case corner of each
// patterning option) — the read-stability margin the wire variability
// consumes.
//
// The workload is one query over the n sweep; the shared bench driver
// (bench_driver.h) runs the thread-scaling grid with the bitwise
// determinism check, and the bench adds the per-option science table,
// the adaptive-vs-reference agreement gate, the nominal-disturb step
// counters, and the BENCH_disturb.json artifact.
//
//   $ ./bench_ext_disturb [max_word_lines]
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_driver.h"
#include "core/session.h"
#include "sram/bitline_model.h"
#include "sram/disturb_sim.h"
#include "util/table.h"
#include "util/thread_pool.h"

int main(int argc, char** argv)
{
    using namespace mpsram;

    const int max_n = argc > 1 ? std::atoi(argv[1]) : 256;
    if (max_n < 16) {
        std::cerr << "usage: bench_ext_disturb [max_word_lines>=16]\n";
        return 2;
    }

    std::vector<int> sizes;
    for (const int n : {16, 64, 256}) {
        if (n <= max_n) sizes.push_back(n);
    }
    const int hw = util::Thread_pool::hardware_threads();

    std::cout << "Extension: half-select read-disturb bump vs patterning "
                 "option, n in {";
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        std::cout << sizes[i] << (i + 1 < sizes.size() ? ", " : "");
    }
    std::cout << "}\n\n";

    // --- the science table ---------------------------------------------------
    {
        const core::Study_session session;
        const core::Runner_options runner{hw};
        const double vdd = session.technology().feol.vdd;

        util::Table table({"option", "array", "v_bump nominal",
                           "bump / (vdd/2)", "v_bump worst", "disturb"});
        for (const auto option : tech::all_patterning_options) {
            const auto rows =
                session.run(core::Query(core::Metric::disturb)
                                .over_word_lines(option, sizes)
                                .on(runner));
            for (std::size_t i = 0; i < rows.size(); ++i) {
                const auto& r = rows.as<core::Disturb_row>(i);
                table.add_row(
                    {std::string(tech::to_string(option)),
                     "10x" + std::to_string(sizes[i]),
                     util::fmt_fixed(1e3 * r.v_bump_nominal, 2) + " mV",
                     util::fmt_fixed(r.v_bump_nominal / (0.5 * vdd), 3),
                     util::fmt_fixed(1e3 * r.v_bump_varied, 2) + " mV",
                     util::fmt_fixed(r.disturb_percent, 3) + "%"});
            }
        }
        std::cout << table.render() << '\n'
                  << "Expected: the bump is set by the pass-gate /\n"
                     "pull-down divider and stays well below vdd/2 (no\n"
                     "flip); wire variability moves it by far less than it\n"
                     "moves td — the disturb path fights the cell, not the\n"
                     "wire RC.\n\n";
    }

    // --- thread scaling ------------------------------------------------------
    bench::Scaling_config cfg;
    cfg.bench_name = "bench_ext_disturb";
    cfg.workload = "le3_half_select_disturb_sweep";
    cfg.json_path = "BENCH_disturb.json";
    cfg.sims_per_row = 2.0;
    cfg.run = [&sizes](int threads, sram::Sim_accuracy accuracy) {
        const core::Study_session session;
        return session.run(
            core::Query(core::Metric::disturb)
                .over_word_lines(tech::Patterning_option::le3, sizes)
                .with_accuracy(accuracy)
                .on(core::Runner_options{threads}));
    };
    const bench::Scaling_outcome outcome = bench::run_thread_scaling(cfg);

    // --- calibration agreement: fast vs reference on every disturb row -------
    const core::Runner_options agreement_runner{hw};
    const bench::Agreement agreement =
        bench::run_option_agreement([&](tech::Patterning_option option) {
            return core::Query(core::Metric::disturb)
                .over_word_lines(option, sizes)
                .on(agreement_runner);
        });
    std::cout << "Checked over every disturb row (all options):\n";
    bench::report_agreement(agreement, "v_bump");

    // --- step counters of one nominal disturb at the largest size ------------
    spice::Step_stats steps[2];
    bench::measure_nominal_steps<sram::Disturb_sim_context>(sizes.back(),
                                                            steps);
    std::cout << "\nStep counts, nominal disturb at 10x" << sizes.back()
              << ":\n";
    bench::print_step_table(steps);

    bench::write_bench_json(cfg, outcome, &agreement, steps, sizes.back());
    return outcome.all_identical && agreement.within_budget() ? 0 : 1;
}
