// Linear-solver tier scaling: direct vs bypass (factorization-reuse
// Newton) vs iterative (ILU(0)-BiCGSTAB) on nominal read transients of
// 10x{256, 1024, 4096, 8192} columns, plus the gates that let the reuse
// tiers ship: the 0.5% adaptive-vs-reference agreement budget per tier
// and the bitwise thread-count determinism contract per tier.
//
// Three sections land in BENCH_solver.json:
//
//   - "solver_matrix": per (word_lines, policy) wall time of one nominal
//     read at fast accuracy on a warmed column context (netlist build and
//     symbolic factorization excluded), with the Step_stats solver
//     counters (newton_iterations / lu_factorizations / bypass_hits) that
//     prove WHERE the speedup comes from — bypass must show
//     lu_factorizations well under newton_iterations.
//   - "agreement_bypass" / "agreement_iterative": fast+bypass and
//     fast+iterative vs the reference+direct oracle over the canonical
//     Fig. 4 read set (every patterning option, n up to 1024), both held
//     to the same 0.5% budget as the accuracy tier.
//   - "per_policy_deterministic": 1/2/8-thread bitwise Result_table
//     identity of a read sweep pinned to each tier.
//
//   $ ./bench_perf_solver [max_word_lines]
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_driver.h"
#include "core/session.h"
#include "sram/bitline_model.h"
#include "sram/read_sim.h"
#include "sram/solver_policy.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace mpsram;

constexpr spice::Solver_policy solver_tiers[] = {
    spice::Solver_policy::direct, spice::Solver_policy::bypass,
    spice::Solver_policy::iterative};

struct Matrix_entry {
    int word_lines = 0;
    spice::Solver_policy policy = spice::Solver_policy::direct;
    double wall_s = 0.0;
    double speedup_vs_direct = 1.0;
    spice::Step_stats steps;
};

/// One nominal read per (word_lines, policy) at fast accuracy on a warmed
/// context, so the measured wall is the transient solve alone.
std::vector<Matrix_entry> run_solver_matrix(const std::vector<int>& sizes)
{
    const core::Study_session session;
    const tech::Technology& t = session.technology();
    const auto cell = sram::Cell_electrical::n10(t.feol);

    std::vector<Matrix_entry> matrix;
    for (const int n : sizes) {
        sram::Array_config cfg = session.options().array;
        cfg.word_lines = n;
        const geom::Wire_array nominal =
            session.decomposed_array(tech::Patterning_option::euv, n);
        const sram::Bitline_electrical wires =
            sram::roll_up_nominal(session.extractor(), nominal, t, cfg);

        sram::Read_sim_context sim;
        sram::Read_options warm;
        warm.accuracy = sram::Sim_accuracy::fast;
        warm.solver = spice::Solver_policy::direct;
        // At 4k/8k rows the differential never reaches the sense
        // threshold, so window-doubling retries would cascade up to four
        // full transients into one cell of the matrix.  One transient per
        // (n, policy) keeps the walls comparable across n.
        warm.max_retries = 0;
        sim.simulate(t, cell, wires, cfg, {}, {}, warm);

        double direct_wall = 0.0;
        for (const spice::Solver_policy policy : solver_tiers) {
            sram::Read_options opts;
            opts.accuracy = sram::Sim_accuracy::fast;
            opts.solver = policy;
            opts.max_retries = 0;
            const auto t0 = std::chrono::steady_clock::now();
            const sram::Read_result r =
                sim.simulate(t, cell, wires, cfg, {}, {}, opts);
            Matrix_entry e;
            e.word_lines = n;
            e.policy = policy;
            e.wall_s =
                bench::seconds_of(std::chrono::steady_clock::now() - t0);
            e.steps = r.steps;
            if (policy == spice::Solver_policy::direct) {
                direct_wall = e.wall_s;
            }
            e.speedup_vs_direct = direct_wall / e.wall_s;
            matrix.push_back(e);
        }
    }
    return matrix;
}

void print_solver_matrix(const std::vector<Matrix_entry>& matrix)
{
    util::Table table({"word lines", "policy", "wall [s]",
                       "speedup vs direct", "newton iters", "lu factors",
                       "bypass hits"});
    for (const Matrix_entry& e : matrix) {
        table.add_row({std::to_string(e.word_lines),
                       sram::to_string(e.policy),
                       util::fmt_fixed(e.wall_s, 3),
                       util::fmt_fixed(e.speedup_vs_direct, 2) + "x",
                       std::to_string(e.steps.newton_iterations),
                       std::to_string(e.steps.lu_factorizations),
                       std::to_string(e.steps.bypass_hits)});
    }
    std::cout << table.render() << '\n';
}

/// 1/2/8-thread bitwise identity of a read sweep pinned to `policy`.
bool policy_deterministic(spice::Solver_policy policy)
{
    const std::vector<int> sizes = {16, 24, 32, 48, 64, 96, 128};
    const auto run = [&](int threads) {
        const core::Study_session session;
        return session.run(
            core::Query(core::Metric::read_td)
                .over_word_lines(tech::Patterning_option::le3, sizes)
                .with_accuracy(sram::Sim_accuracy::fast)
                .with_solver(policy)
                .on(core::Runner_options{threads}));
    };
    const core::Result_table serial = run(1);
    bool identical = true;
    for (const int threads : {2, 8}) {
        identical = identical && run(threads) == serial;
    }
    std::cout << "  " << sram::to_string(policy)
              << ": 1/2/8-thread bitwise identity "
              << (identical ? "holds" : "BROKEN") << '\n';
    return identical;
}

std::string json_of(const bench::Agreement& a)
{
    return "{\"max_rel\": " + std::to_string(a.max_rel) +
           ", \"max_points\": " + std::to_string(a.max_points) +
           ", \"within_budget\": " +
           (a.within_budget() ? "true" : "false") + "}";
}

} // namespace

int main(int argc, char** argv)
{
    const int max_n = argc > 1 ? std::atoi(argv[1]) : 1024;
    if (max_n < 256) {
        std::cerr << "usage: bench_perf_solver [max_word_lines>=256]\n";
        return 2;
    }

    std::vector<int> matrix_sizes;
    for (const int n : {256, 1024, 4096, 8192}) {
        if (n <= max_n) matrix_sizes.push_back(n);
    }

    std::cout << "Solver-tier scaling: nominal EUV read, n in {256, 1024, "
                 "4096, 8192} up to 10x"
              << max_n << "\n"
              << "Tiers: direct = per-iteration LU oracle, bypass = "
                 "factorization-reuse Newton,\n"
                 "iterative = ILU(0)-preconditioned BiCGSTAB (see "
                 "spice/analysis.h)\n\n";

    // --- per-(n, policy) wall / counter matrix at fast accuracy --------------
    const std::vector<Matrix_entry> matrix = run_solver_matrix(matrix_sizes);
    print_solver_matrix(matrix);

    // --- thread-scaling grid of the production default tier ------------------
    std::vector<int> sweep_sizes;
    for (const int n : {64, 96, 128, 192, 256, 384, 512, 768, 1024}) {
        if (n <= max_n) sweep_sizes.push_back(n);
    }
    bench::Scaling_config cfg;
    cfg.bench_name = "bench_perf_solver";
    cfg.workload = "euv_read_td_solver_tiers";
    cfg.json_path = "BENCH_solver.json";
    cfg.sims_per_row = 2.0;
    cfg.run = [&sweep_sizes](int threads, sram::Sim_accuracy accuracy) {
        const core::Study_session session;
        return session.run(
            core::Query(core::Metric::read_td)
                .over_word_lines(tech::Patterning_option::euv, sweep_sizes)
                .with_accuracy(accuracy)
                .on(core::Runner_options{threads}));
    };
    const bench::Scaling_outcome outcome = bench::run_thread_scaling(cfg);

    // --- per-tier agreement vs the reference+direct oracle --------------------
    // One session so the heavy reference sweeps are computed once and the
    // per-policy memo keys keep the three engines from crossing results.
    constexpr int fig4_sizes[] = {16, 64, 256, 1024};
    const core::Runner_options agreement_runner{
        util::Thread_pool::hardware_threads()};
    bench::Agreement gate_bypass;
    bench::Agreement gate_iterative;
    {
        const core::Study_session session;
        for (const auto option : tech::all_patterning_options) {
            const core::Query query =
                core::Query(core::Metric::read_td)
                    .over_word_lines(option, fig4_sizes)
                    .on(agreement_runner);
            const core::Result_table reference = session.run(
                core::Query(query).with_accuracy(
                    sram::Sim_accuracy::reference));
            bench::accumulate_agreement(
                gate_bypass, reference,
                session.run(core::Query(query)
                                .with_accuracy(sram::Sim_accuracy::fast)
                                .with_solver(spice::Solver_policy::bypass)));
            bench::accumulate_agreement(
                gate_iterative, reference,
                session.run(
                    core::Query(query)
                        .with_accuracy(sram::Sim_accuracy::fast)
                        .with_solver(spice::Solver_policy::iterative)));
        }
    }
    std::cout << "Checked over the full Fig. 4 set (all options, n up to "
                 "1024):\nbypass tier —\n";
    bench::report_agreement(gate_bypass, "td");
    std::cout << "iterative tier —\n";
    bench::report_agreement(gate_iterative, "td");

    // --- bitwise thread determinism per tier ----------------------------------
    std::cout << "\nPer-tier determinism (read_td sweep, LE3):\n";
    bool deterministic = true;
    for (const spice::Solver_policy policy : solver_tiers) {
        deterministic = policy_deterministic(policy) && deterministic;
    }

    // --- cold-then-warm result-cache smoke ------------------------------------
    // The warm rerun of the cached agreement-style sweep must skip every
    // corner search and surface fit and return bitwise-identical rows —
    // the acceptance gate of the persistence layer (core/result_cache.h).
    std::cout << '\n';
    static constexpr int smoke_sizes[] = {16, 64, 256};
    const bench::Cache_smoke smoke = bench::run_cache_smoke(
        [&agreement_runner](const core::Study_session& session) {
            return session.run(
                core::Query(core::Metric::read_td)
                    .over_word_lines(tech::Patterning_option::le3,
                                     smoke_sizes)
                    .with_accuracy(sram::Sim_accuracy::fast)
                    .on(agreement_runner));
        },
        "BENCH_solver.cache");

    // --- BENCH_solver.json ----------------------------------------------------
    std::vector<std::string> extra;
    std::string rows = "\"solver_matrix\": [";
    for (std::size_t i = 0; i < matrix.size(); ++i) {
        const Matrix_entry& e = matrix[i];
        rows += std::string("\n    {\"word_lines\": ") +
                std::to_string(e.word_lines) + ", \"policy\": \"" +
                sram::to_string(e.policy) +
                "\", \"wall_s\": " + std::to_string(e.wall_s) +
                ", \"speedup_vs_direct\": " +
                std::to_string(e.speedup_vs_direct) +
                ", \"newton_iterations\": " +
                std::to_string(e.steps.newton_iterations) +
                ", \"lu_factorizations\": " +
                std::to_string(e.steps.lu_factorizations) +
                ", \"bypass_hits\": " + std::to_string(e.steps.bypass_hits) +
                "}" + (i + 1 < matrix.size() ? "," : "");
    }
    rows += "\n  ],";
    extra.push_back(rows);
    extra.push_back("\"agreement_bypass\": " + json_of(gate_bypass) + ",");
    extra.push_back("\"agreement_iterative\": " + json_of(gate_iterative) +
                    ",");
    extra.push_back(
        std::string("\"per_policy_deterministic\": ") +
        (deterministic ? "true" : "false") + ",");
    for (std::string& field : bench::cache_smoke_fields(smoke)) {
        extra.push_back(std::move(field));
    }

    spice::Step_stats steps[2];
    bench::measure_nominal_steps<sram::Read_sim_context>(sweep_sizes.back(),
                                                         steps);
    std::cout << "\nStep counts, nominal read at 10x" << sweep_sizes.back()
              << " (fast row runs the default "
              << sram::to_string(sram::default_solver_policy())
              << " tier):\n";
    bench::print_step_table(steps);

    bench::write_bench_json(cfg, outcome, &gate_bypass, steps,
                            matrix_sizes.back(), extra);
    return outcome.all_identical && deterministic &&
                   gate_bypass.within_budget() &&
                   gate_iterative.within_budget() && smoke.passed()
               ? 0
               : 1;
}
