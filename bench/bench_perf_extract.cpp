// Engine performance benchmarks (google-benchmark): the parameterized LPE.
//
// Extraction sits in the Monte-Carlo inner loop (one realize + extract per
// sample), so its throughput bounds the achievable sample counts.
#include <benchmark/benchmark.h>

#include "extract/extractor.h"
#include "pattern/corners.h"
#include "pattern/engine.h"
#include "sram/layout.h"
#include "tech/technology.h"
#include "util/rng.h"

namespace {

using namespace mpsram;

void bm_wire_rc(benchmark::State& state)
{
    const tech::Technology t = tech::n10();
    const extract::Extractor ex(t.metal1);
    sram::Array_config cfg;
    cfg.word_lines = 64;
    const geom::Wire_array arr = sram::build_metal1_array(t, cfg);
    const std::size_t victim = sram::find_victim_wires(arr, cfg).bl;

    for (auto _ : state) {
        benchmark::DoNotOptimize(ex.wire_rc(arr, victim).c_total());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_wire_rc);

void bm_realize_and_extract(benchmark::State& state)
{
    const auto option =
        static_cast<tech::Patterning_option>(state.range(0));
    const tech::Technology t = tech::n10();
    const extract::Extractor ex(t.metal1);
    const auto engine = pattern::make_engine(option, t);

    sram::Array_config cfg;
    cfg.word_lines = 64;
    cfg.victim_pair = 6;
    const geom::Wire_array nominal =
        engine->decompose(sram::build_metal1_array(t, cfg));
    const std::size_t victim = sram::find_victim_wires(nominal, cfg).bl;

    util::Rng rng(7);
    for (auto _ : state) {
        const auto sample = engine->sample_gaussian(rng);
        const geom::Wire_array realized = engine->realize(nominal, sample);
        benchmark::DoNotOptimize(
            ex.variation(nominal, realized, victim).c_factor);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_realize_and_extract)->Arg(0)->Arg(1)->Arg(2);

void bm_corner_enumeration(benchmark::State& state)
{
    const tech::Technology t = tech::n10();
    const extract::Extractor ex(t.metal1);
    const auto engine =
        pattern::make_engine(tech::Patterning_option::le3, t);

    sram::Array_config cfg;
    cfg.word_lines = 64;
    cfg.victim_pair = 6;
    const geom::Wire_array nominal =
        engine->decompose(sram::build_metal1_array(t, cfg));
    const std::size_t victim = sram::find_victim_wires(nominal, cfg).bl;

    for (auto _ : state) {
        const auto metric = [&](const pattern::Process_sample& s) {
            return ex.wire_rc(engine->realize(nominal, s), victim).c_total();
        };
        const auto search = pattern::enumerate_corners(*engine, metric);
        benchmark::DoNotOptimize(search.worst.metric);
    }
}
BENCHMARK(bm_corner_enumeration)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
