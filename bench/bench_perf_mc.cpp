// Monte-Carlo engine throughput: threads vs wall time on the Fig. 5
// workload (LE3 @ 8 nm 3-sigma OL, 10x64 array, 10k samples).
//
// Prints a thread-scaling table, verifies the determinism contract (the
// parallel runs must be bitwise identical to the serial run), and emits
// BENCH_mc.json so the samples/sec trajectory can be tracked across
// revisions.
//
//   $ ./bench_perf_mc [samples]
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/study.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace mpsram;

double seconds_of(const std::chrono::steady_clock::duration& d)
{
    return std::chrono::duration<double>(d).count();
}

} // namespace

int main(int argc, char** argv)
{
    const int samples = argc > 1 ? std::atoi(argv[1]) : 10000;
    if (samples <= 0) {
        std::cerr << "usage: bench_perf_mc [samples>0]\n";
        return 2;
    }
    constexpr int n = 64;
    constexpr double ol_8nm = 8e-9;

    const core::Variability_study study;
    mc::Distribution_options mo;
    mo.samples = samples;

    const int hw = util::Thread_pool::hardware_threads();
    std::vector<int> thread_counts = {1, 2, 4};
    if (hw > 4) thread_counts.push_back(hw);

    std::cout << "MC throughput: LE3 @ 8 nm 3s OL, 10x" << n << ", "
              << samples << " samples, " << hw << " hardware threads\n\n";

    util::Table table({"threads", "wall [s]", "samples/s", "speedup",
                       "bitwise == serial"});

    struct Point {
        int threads = 0;
        double wall_s = 0.0;
        double samples_per_s = 0.0;
        bool identical = true;
    };
    std::vector<Point> points;
    mc::Tdp_distribution serial_dist;

    for (const int threads : thread_counts) {
        mo.runner.threads = threads;

        // One warm-up pass, then the timed pass.
        study.mc_tdp(tech::Patterning_option::le3, n, mo, ol_8nm);
        const auto t0 = std::chrono::steady_clock::now();
        const auto dist =
            study.mc_tdp(tech::Patterning_option::le3, n, mo, ol_8nm);
        const double wall = seconds_of(std::chrono::steady_clock::now() - t0);

        Point p;
        p.threads = threads;
        p.wall_s = wall;
        p.samples_per_s = samples / wall;
        if (threads == 1) {
            serial_dist = dist;
        } else {
            p.identical = dist.tdp == serial_dist.tdp &&
                          dist.rvar == serial_dist.rvar &&
                          dist.cvar == serial_dist.cvar;
        }
        points.push_back(p);

        table.add_row({std::to_string(threads),
                       util::fmt_fixed(wall, 3),
                       util::fmt_fixed(p.samples_per_s, 0),
                       util::fmt_fixed(points.front().wall_s / wall, 2) + "x",
                       p.identical ? "yes" : "NO"});
    }

    std::cout << table.render() << '\n';

    bool all_identical = true;
    for (const Point& p : points) all_identical = all_identical && p.identical;
    if (!all_identical) {
        std::cout << "ERROR: parallel results diverged from serial — the\n"
                     "determinism contract is broken.\n";
    }

    std::ofstream json("BENCH_mc.json");
    json << "{\n"
         << "  \"bench\": \"bench_perf_mc\",\n"
         << "  \"workload\": \"le3_8nm_ol_10x64_fig5\",\n"
         << "  \"samples\": " << samples << ",\n"
         << "  \"hardware_threads\": " << hw << ",\n"
         << "  \"deterministic_across_threads\": "
         << (all_identical ? "true" : "false") << ",\n"
         << "  \"results\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        json << "    {\"threads\": " << points[i].threads
             << ", \"wall_s\": " << points[i].wall_s
             << ", \"samples_per_s\": " << points[i].samples_per_s << "}"
             << (i + 1 < points.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "Wrote BENCH_mc.json\n";

    return all_identical ? 0 : 1;
}
