// Engine performance benchmarks (google-benchmark): the Monte-Carlo loop.
#include <benchmark/benchmark.h>

#include "core/study.h"

namespace {

using namespace mpsram;

void bm_mc_tdp(benchmark::State& state)
{
    const core::Variability_study study;
    const auto option =
        static_cast<tech::Patterning_option>(state.range(0));

    mc::Distribution_options mo;
    mo.samples = static_cast<int>(state.range(1));

    for (auto _ : state) {
        const auto dist = study.mc_tdp(option, 64, mo);
        benchmark::DoNotOptimize(dist.summary.stddev);
    }
    state.SetItemsProcessed(state.iterations() * mo.samples);
}
BENCHMARK(bm_mc_tdp)
    ->Args({0, 1000})
    ->Args({1, 1000})
    ->Args({2, 1000})
    ->Args({0, 10000})
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
