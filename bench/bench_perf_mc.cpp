// Monte-Carlo engine throughput on the shared bench driver: threads vs
// wall time on the Fig. 5 workload (LE3 @ 8 nm 3-sigma OL, 10x64 array,
// 10k samples, analytic-formula sample engine).
//
// The driver runs the threads x {fast, reference} scaling grid with the
// bitwise determinism check (the parallel distributions must equal the
// serial ones, sample for sample) and emits BENCH_mc.json so the
// samples/sec trajectory can be tracked across revisions.  The formula
// engine runs no transients, so there is no adaptive-vs-reference gate
// and no step-counter table here — the surrogate/SPICE engine comparison
// lives in bench_ext_yield.
//
//   $ ./bench_perf_mc [samples]
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_driver.h"

int main(int argc, char** argv)
{
    using namespace mpsram;

    const int samples = argc > 1 ? std::atoi(argv[1]) : 10000;
    if (samples <= 0) {
        std::cerr << "usage: bench_perf_mc [samples>0]\n";
        return 2;
    }
    constexpr int n = 64;
    constexpr double ol_8nm = 8e-9;

    std::cout << "MC throughput: LE3 @ 8 nm 3s OL, 10x" << n << ", "
              << samples << " samples\n\n";

    bench::Scaling_config cfg;
    cfg.bench_name = "bench_perf_mc";
    cfg.workload = "le3_8nm_ol_10x64_fig5";
    cfg.json_path = "BENCH_mc.json";
    cfg.sims_per_row = static_cast<double>(samples);
    cfg.run = [samples](int threads, sram::Sim_accuracy accuracy) {
        const core::Study_session session;
        core::Query q(core::Metric::mc_tdp);
        q.with_case({tech::Patterning_option::le3, n, ol_8nm})
            .with_accuracy(accuracy);
        q.mc.samples = samples;
        q.mc.runner = core::Runner_options{threads};
        return session.run(q);
    };
    const bench::Scaling_outcome outcome = bench::run_thread_scaling(cfg);

    bench::write_bench_json(
        cfg, outcome, nullptr, nullptr, n,
        {"\"samples\": " + std::to_string(samples) + ","});
    return outcome.all_identical ? 0 : 1;
}
