// Extension experiment (beyond the paper): does multiple-patterning
// variability hit the WRITE operation as hard as the read?
//
// Same worst-case corners as Table I, same column substrate, but the
// figure of merit is tw (word-line 50% to storage-node flip).  The write
// driver is much stronger than a cell's pull-down, so the expectation is
// that the wire-RC penalty is diluted relative to the read — quantified
// here over the n in {16, 64, 256} sweep.
//
// Since PR 5 the workload is a query (Metric::write_tw) and the
// thread-scaling / determinism / JSON plumbing is the shared bench driver
// (bench_driver.h).  This bench keeps the write-specific legs: the
// science table (twp vs tdp per option), the adaptive-vs-reference tw
// agreement gate on every write row, the nominal-write step counters, a
// SPICE-in-the-loop MC twp smoke, and — new with the analytic tw model —
// a 10k-sample formula-engine twp distribution that runs without SPICE in
// the sample loop.  Everything lands in BENCH_write.json.
//
//   $ ./bench_ext_write_impact [max_word_lines]
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_driver.h"
#include "core/session.h"
#include "sram/write_sim.h"
#include "util/table.h"
#include "util/thread_pool.h"

int main(int argc, char** argv)
{
    using namespace mpsram;

    const int max_n = argc > 1 ? std::atoi(argv[1]) : 256;
    if (max_n < 16) {
        std::cerr << "usage: bench_ext_write_impact [max_word_lines>=16]\n";
        return 2;
    }

    std::vector<int> sizes;
    for (const int n : {16, 64, 256}) {
        if (n <= max_n) sizes.push_back(n);
    }
    const int hw = util::Thread_pool::hardware_threads();

    std::cout << "Extension: write-time penalty (twp) vs read-time penalty "
                 "(tdp)\nat the per-option worst-case corners, n in {";
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        std::cout << sizes[i] << (i + 1 < sizes.size() ? ", " : "");
    }
    std::cout << "}\n\n";

    // --- the science table, through the query API ----------------------------
    // One session for the whole table: every option's write and read
    // queries share the nominal memos and the worst-case corner searches.
    {
        const core::Study_session session;
        const core::Runner_options runner{hw};
        const auto tw_nominals = session.run(
            core::Query(core::Metric::nominal_tw)
                .over_word_lines(tech::Patterning_option::euv, sizes)
                .on(runner));

        util::Table table({"option", "array", "tw nominal",
                           "tw formula", "twp", "tdp (read)"});
        for (const auto option : tech::all_patterning_options) {
            const auto write =
                session.run(core::Query(core::Metric::write_tw)
                                .over_word_lines(option, sizes)
                                .on(runner));
            const auto read =
                session.run(core::Query(core::Metric::read_td)
                                .over_word_lines(option, sizes)
                                .on(runner));
            for (std::size_t i = 0; i < sizes.size(); ++i) {
                const auto& nom = tw_nominals.as<core::Nominal_tw_row>(i);
                table.add_row(
                    {std::string(tech::to_string(option)),
                     "10x" + std::to_string(sizes[i]),
                     util::fmt_time(nom.tw_simulation, 2),
                     util::fmt_time(nom.tw_formula, 2),
                     util::fmt_fixed(
                         write.as<core::Write_row>(i).twp_percent, 2) +
                         "%",
                     util::fmt_fixed(
                         read.as<core::Read_row>(i).tdp_percent, 2) +
                         "%"});
            }
        }
        std::cout << table.render() << '\n'
                  << "Expected: the write penalty follows the same option\n"
                     "ordering as the read (LE3 worst) but is diluted by "
                     "the\nstrong, array-scaled write driver; the lumped "
                     "tw formula\nunderestimates SPICE like the td one "
                     "does.\n\n";
    }

    // --- thread scaling of the write sweep, per policy -----------------------
    bench::Scaling_config cfg;
    cfg.bench_name = "bench_ext_write_impact";
    cfg.workload = "le3_worst_case_write_sweep";
    cfg.json_path = "BENCH_write.json";
    cfg.sims_per_row = 2.0;
    cfg.run = [&sizes](int threads, sram::Sim_accuracy accuracy) {
        const core::Study_session session;
        return session.run(
            core::Query(core::Metric::write_tw)
                .over_word_lines(tech::Patterning_option::le3, sizes)
                .with_accuracy(accuracy)
                .on(core::Runner_options{threads}));
    };
    const bench::Scaling_outcome outcome = bench::run_thread_scaling(cfg);

    // --- calibration agreement: fast vs reference on every write row ---------
    // The write analogue of the read calibration gate: adaptive tw within
    // 0.5% of the fixed-step reference on every write sweep row of every
    // patterning option.
    const core::Runner_options agreement_runner{hw};
    const bench::Agreement agreement =
        bench::run_option_agreement([&](tech::Patterning_option option) {
            return core::Query(core::Metric::write_tw)
                .over_word_lines(option, sizes)
                .on(agreement_runner);
        });
    std::cout << "Checked over every write sweep row (all options):\n";
    bench::report_agreement(agreement, "tw");

    // --- step counters of one nominal write at the largest size --------------
    spice::Step_stats steps[2];
    bench::measure_nominal_steps<sram::Write_sim_context>(sizes.back(),
                                                          steps);
    std::cout << "\nStep counts, nominal write at 10x" << sizes.back()
              << ":\n";
    bench::print_step_table(steps);

    // --- MC twp: SPICE-in-the-loop smoke vs the 10k-sample formula engine ----
    std::vector<std::string> extra_fields;
    {
        const core::Study_session session;

        mc::Distribution_options spice_mo;
        spice_mo.samples = 64;
        spice_mo.runner.threads = hw;
        auto t0 = std::chrono::steady_clock::now();
        const auto spice_dist =
            session
                .run(core::Query(core::Metric::mc_twp)
                         .with_case({tech::Patterning_option::le3,
                                     sizes.front()})
                         .with_mc(spice_mo))
                .as<mc::Tdp_distribution>(0);
        const double spice_wall =
            bench::seconds_of(std::chrono::steady_clock::now() - t0);

        // The analytic tw model as the sample engine: 10k samples at
        // read-MC cost (no transient per sample) — the workload the
        // SPICE loop cannot afford.
        mc::Distribution_options formula_mo = spice_mo;
        formula_mo.samples = 10000;
        t0 = std::chrono::steady_clock::now();
        const auto formula_dist =
            session
                .run(core::Query(core::Metric::mc_twp)
                         .with_case({tech::Patterning_option::le3,
                                     sizes.front()})
                         .with_mc(formula_mo)
                         .with_twp_engine(core::Twp_engine::formula))
                .as<mc::Tdp_distribution>(0);
        const double formula_wall =
            bench::seconds_of(std::chrono::steady_clock::now() - t0);

        std::cout << "MC twp (LE3, 10x" << sizes.front() << "):\n  SPICE engine   "
                  << spice_mo.samples << " samples: sigma "
                  << util::fmt_fixed(spice_dist.summary.stddev, 3)
                  << "%, wall " << util::fmt_fixed(spice_wall, 3)
                  << " s\n  formula engine " << formula_mo.samples
                  << " samples: sigma "
                  << util::fmt_fixed(formula_dist.summary.stddev, 3)
                  << "%, wall " << util::fmt_fixed(formula_wall, 3)
                  << " s\n";

        std::ostringstream mc_json;
        mc_json << "\"mc_twp\": {\"spice\": {\"samples\": "
                << spice_mo.samples << ", \"wall_s\": " << spice_wall
                << ", \"mean\": " << spice_dist.summary.mean
                << ", \"stddev\": " << spice_dist.summary.stddev
                << "}, \"formula\": {\"samples\": " << formula_mo.samples
                << ", \"wall_s\": " << formula_wall
                << ", \"mean\": " << formula_dist.summary.mean
                << ", \"stddev\": " << formula_dist.summary.stddev << "}},";
        extra_fields.push_back(mc_json.str());
    }

    bench::write_bench_json(cfg, outcome, &agreement, steps, sizes.back(),
                            extra_fields);
    return outcome.all_identical && agreement.within_budget() ? 0 : 1;
}
