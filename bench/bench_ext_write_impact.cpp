// Extension experiment (beyond the paper): does multiple-patterning
// variability hit the WRITE operation as hard as the read?
//
// Same worst-case corners as Table I, same column substrate, but the
// figure of merit is tw (word-line 50% to storage-node flip).  The write
// driver is much stronger than a cell's pull-down, so the expectation is
// that the wire-RC penalty is diluted relative to the read — quantified
// here over the n in {16, 64, 256} sweep.
//
// Since PR 4 this is also the write leg of the perf/calibration gates: the
// sweep runs through the core::Variability_study batch APIs (write_sweep /
// nominal_tw_batch / mc_twp) with per-worker Write_sim_contexts, and the
// bench enforces
//   - bitwise-identical parallel vs serial rows (determinism contract),
//   - adaptive-vs-reference tw agreement <= 0.5% on every write sweep row
//     for every patterning option (the write analogue of the PR 3 read
//     calibration), and
//   - emits walls, step counts and the agreement margins into
//     BENCH_write.json next to BENCH_mc.json / BENCH_spice.json.
//
// Each measured run constructs a fresh Variability_study so the worst-case
// and nominal-tw memos cannot leak work between runs.
//
//   $ ./bench_ext_write_impact [max_word_lines]
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/study.h"
#include "sram/sim_accuracy.h"
#include "sram/write_sim.h"
#include "util/numeric.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace mpsram;

double seconds_of(const std::chrono::steady_clock::duration& d)
{
    return std::chrono::duration<double>(d).count();
}

bool bitwise_equal(const std::vector<core::Variability_study::Write_row>& a,
                   const std::vector<core::Variability_study::Write_row>& b)
{
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].tw_nominal != b[i].tw_nominal ||
            a[i].tw_varied != b[i].tw_varied ||
            a[i].twp_percent != b[i].twp_percent) {
            return false;
        }
    }
    return true;
}

core::Study_options study_opts(sram::Sim_accuracy accuracy)
{
    core::Study_options opts;
    opts.read.accuracy = accuracy;
    opts.write.accuracy = accuracy;
    return opts;
}

} // namespace

int main(int argc, char** argv)
{
    const int max_n = argc > 1 ? std::atoi(argv[1]) : 256;
    if (max_n < 16) {
        std::cerr << "usage: bench_ext_write_impact [max_word_lines>=16]\n";
        return 2;
    }

    std::vector<int> sizes;
    for (const int n : {16, 64, 256}) {
        if (n <= max_n) sizes.push_back(n);
    }

    const int hw = util::Thread_pool::hardware_threads();
    std::vector<int> thread_counts = {1, 2, 4};
    if (hw > 4) thread_counts.push_back(hw);

    constexpr sram::Sim_accuracy policies[] = {sram::Sim_accuracy::fast,
                                               sram::Sim_accuracy::reference};

    std::cout << "Extension: write-time penalty (twp) vs read-time penalty "
                 "(tdp)\nat the per-option worst-case corners, n in {";
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        std::cout << sizes[i] << (i + 1 < sizes.size() ? ", " : "");
    }
    std::cout << "}\n\n";

    // --- the science table, through the batch APIs ---------------------------
    // One study for the whole table: every option's write and read sweeps
    // share the nominal memos and per-worker contexts; the corner searches
    // are shared between the tw and td legs through the worst-case memo.
    {
        const core::Variability_study study;
        const core::Runner_options runner{hw};
        const auto tw_nominals = study.nominal_tw_batch(sizes, runner);

        util::Table table(
            {"option", "array", "tw nominal", "twp", "tdp (read)"});
        for (const auto option : tech::all_patterning_options) {
            const auto write = study.write_sweep(option, sizes, runner);
            const auto read = study.read_sweep(option, sizes, runner);
            for (std::size_t i = 0; i < sizes.size(); ++i) {
                table.add_row(
                    {std::string(tech::to_string(option)),
                     "10x" + std::to_string(sizes[i]),
                     util::fmt_time(tw_nominals[i], 2),
                     util::fmt_fixed(write[i].twp_percent, 2) + "%",
                     util::fmt_fixed(read[i].tdp_percent, 2) + "%"});
            }
        }
        std::cout << table.render() << '\n'
                  << "Expected: the write penalty follows the same option\n"
                     "ordering as the read (LE3 worst) but is diluted by "
                     "the\nstrong, array-scaled write driver.\n\n";
    }

    // --- thread scaling of the write sweep, per policy -----------------------
    std::cout << "Write sweep walls (LE3 worst-case write, " << sizes.size()
              << " array sizes, " << hw << " hardware threads)\n";
    util::Table scaling({"threads", "policy", "wall [s]", "thread speedup",
                         "adaptive speedup", "bitwise == serial"});

    struct Point {
        int threads = 0;
        double wall_s[2] = {0.0, 0.0};  // indexed like `policies`
        bool identical[2] = {true, true};
    };
    std::vector<Point> points;
    std::vector<core::Variability_study::Write_row> serial_rows[2];

    for (const int threads : thread_counts) {
        Point p;
        p.threads = threads;
        for (int pi = 0; pi < 2; ++pi) {
            const core::Variability_study study(tech::n10(),
                                                study_opts(policies[pi]));
            const auto t0 = std::chrono::steady_clock::now();
            const auto rows = study.write_sweep(
                tech::Patterning_option::le3, sizes,
                core::Runner_options{threads});
            p.wall_s[pi] = seconds_of(std::chrono::steady_clock::now() - t0);
            if (threads == 1) {
                serial_rows[pi] = rows;
            } else {
                p.identical[pi] = bitwise_equal(rows, serial_rows[pi]);
            }
        }
        points.push_back(p);
        for (int pi = 0; pi < 2; ++pi) {
            scaling.add_row(
                {std::to_string(threads), sram::to_string(policies[pi]),
                 util::fmt_fixed(p.wall_s[pi], 3),
                 util::fmt_fixed(points.front().wall_s[pi] / p.wall_s[pi],
                                 2) +
                     "x",
                 util::fmt_fixed(p.wall_s[1] / p.wall_s[0], 2) + "x",
                 p.identical[pi] ? "yes" : "NO"});
        }
    }
    std::cout << scaling.render() << '\n';

    // --- calibration agreement: fast vs reference on every write row ---------
    // The write analogue of the PR 3 read calibration gate: adaptive tw
    // within 0.5% of the fixed-step reference on every write sweep row of
    // every patterning option.
    const core::Runner_options agreement_runner{hw};
    double max_tw_rel = 0.0;
    double max_twp_pts = 0.0;
    // One study pair for all options: this section is untimed, and sharing
    // the nominal-tw memo across options skips re-running the
    // option-independent nominal transients (the worst-case memo is keyed
    // per option, so every gated value is unchanged).
    const core::Variability_study ref_study(
        tech::n10(), study_opts(sram::Sim_accuracy::reference));
    const core::Variability_study fast_study(
        tech::n10(), study_opts(sram::Sim_accuracy::fast));
    for (const auto option : tech::all_patterning_options) {
        const auto ref_rows =
            ref_study.write_sweep(option, sizes, agreement_runner);
        const auto fast_rows =
            fast_study.write_sweep(option, sizes, agreement_runner);
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            max_tw_rel =
                std::max({max_tw_rel,
                          util::rel_diff(ref_rows[i].tw_nominal,
                                         fast_rows[i].tw_nominal),
                          util::rel_diff(ref_rows[i].tw_varied,
                                         fast_rows[i].tw_varied)});
            max_twp_pts =
                std::max(max_twp_pts, std::fabs(ref_rows[i].twp_percent -
                                                fast_rows[i].twp_percent));
        }
    }
    const bool agreement_ok = max_tw_rel <= 5e-3 && max_twp_pts <= 0.5;
    std::cout << "Adaptive-vs-reference agreement over every write sweep "
                 "row (all options):\n  max |tw| deviation "
              << util::fmt_fixed(100.0 * max_tw_rel, 4) << "% , max |twp| "
              << util::fmt_fixed(max_twp_pts, 4) << " points ("
              << (agreement_ok ? "within" : "OUTSIDE")
              << " the 0.5% calibration budget)\n";

    // --- step counters of one nominal write at the largest size --------------
    spice::Step_stats steps[2];
    {
        const core::Variability_study study;
        const tech::Technology& t = study.technology();
        const auto cell = sram::Cell_electrical::n10(t.feol);
        sram::Array_config cfg = study.options().array;
        cfg.word_lines = sizes.back();
        const geom::Wire_array nominal = study.decomposed_array(
            tech::Patterning_option::euv, sizes.back());
        const sram::Bitline_electrical wires =
            sram::roll_up_nominal(study.extractor(), nominal, t, cfg);
        for (int pi = 0; pi < 2; ++pi) {
            sram::Write_options wopts;
            wopts.accuracy = policies[pi];
            sram::Write_sim_context sim;
            steps[pi] = sim.simulate(t, cell, wires, cfg,
                                     sram::Write_timing{},
                                     sram::Netlist_options{}, wopts)
                            .steps;
        }
        std::cout << "\nStep counts, nominal write at 10x" << sizes.back()
                  << ":\n";
        util::Table step_table({"policy", "accepted", "lte rejected",
                                "newton rejected", "total solves"});
        for (int pi = 0; pi < 2; ++pi) {
            step_table.add_row({sram::to_string(policies[pi]),
                                std::to_string(steps[pi].accepted),
                                std::to_string(steps[pi].lte_rejected),
                                std::to_string(steps[pi].newton_rejected),
                                std::to_string(steps[pi].total_attempts())});
        }
        std::cout << step_table.render() << '\n';
    }

    // --- MC twp smoke: the SPICE-in-the-loop distribution workload -----------
    double mc_wall = 0.0;
    double mc_mean = 0.0;
    double mc_stddev = 0.0;
    constexpr int mc_samples = 64;
    {
        const core::Variability_study study;
        mc::Distribution_options mo;
        mo.samples = mc_samples;
        mo.runner.threads = hw;
        const auto t0 = std::chrono::steady_clock::now();
        const auto dist = study.mc_twp(tech::Patterning_option::le3,
                                       sizes.front(), mo);
        mc_wall = seconds_of(std::chrono::steady_clock::now() - t0);
        mc_mean = dist.summary.mean;
        mc_stddev = dist.summary.stddev;
        std::cout << "MC twp (LE3, 10x" << sizes.front() << ", "
                  << mc_samples << " SPICE samples, " << hw
                  << " threads): mean " << util::fmt_fixed(mc_mean, 3)
                  << "%, sigma " << util::fmt_fixed(mc_stddev, 3)
                  << "%, wall " << util::fmt_fixed(mc_wall, 3) << " s\n";
    }

    bool all_identical = true;
    for (const Point& p : points) {
        all_identical = all_identical && p.identical[0] && p.identical[1];
    }
    if (!all_identical) {
        std::cout << "ERROR: parallel write rows diverged from serial — "
                     "the\ndeterminism contract is broken.\n";
    }
    if (!agreement_ok) {
        std::cout << "ERROR: the adaptive engine left the 0.5% write "
                     "calibration\nbudget — retune sram::fast_lte_* (see "
                     "sim_accuracy.h).\n";
    }

    std::ofstream json("BENCH_write.json");
    json << "{\n"
         << "  \"bench\": \"bench_ext_write_impact\",\n"
         << "  \"workload\": \"le3_worst_case_write_sweep\",\n"
         << "  \"array_sizes\": " << sizes.size() << ",\n"
         << "  \"max_word_lines\": " << sizes.back() << ",\n"
         << "  \"hardware_threads\": " << hw << ",\n"
         << "  \"deterministic_across_threads\": "
         << (all_identical ? "true" : "false") << ",\n"
         << "  \"agreement\": {\"max_tw_rel\": " << max_tw_rel
         << ", \"max_twp_points\": " << max_twp_pts
         << ", \"within_budget\": " << (agreement_ok ? "true" : "false")
         << "},\n"
         << "  \"step_counts_nominal_write\": {\n"
         << "    \"word_lines\": " << sizes.back() << ",\n"
         << "    \"fast\": {\"accepted\": " << steps[0].accepted
         << ", \"lte_rejected\": " << steps[0].lte_rejected
         << ", \"newton_rejected\": " << steps[0].newton_rejected << "},\n"
         << "    \"reference\": {\"accepted\": " << steps[1].accepted
         << ", \"lte_rejected\": " << steps[1].lte_rejected
         << ", \"newton_rejected\": " << steps[1].newton_rejected << "}\n"
         << "  },\n"
         << "  \"mc_twp\": {\"samples\": " << mc_samples
         << ", \"wall_s\": " << mc_wall << ", \"mean\": " << mc_mean
         << ", \"stddev\": " << mc_stddev << "},\n"
         << "  \"results\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        json << "    {\"threads\": " << points[i].threads
             << ", \"wall_s_fast\": " << points[i].wall_s[0]
             << ", \"wall_s_reference\": " << points[i].wall_s[1]
             << ", \"adaptive_speedup\": "
             << points[i].wall_s[1] / points[i].wall_s[0] << "}"
             << (i + 1 < points.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "Wrote BENCH_write.json\n";

    return all_identical && agreement_ok ? 0 : 1;
}
