// Extension experiment (beyond the paper): does multiple-patterning
// variability hit the WRITE operation as hard as the read?
//
// Same worst-case corners as Table I, same column substrate, but the
// figure of merit is tw (word-line 50% to storage-node flip).  The write
// driver is much stronger than a cell's pull-down, so the expectation is
// that the wire-RC penalty is diluted relative to the read — quantified
// here.
#include <iostream>

#include "core/study.h"
#include "sram/write_sim.h"
#include "util/table.h"

int main()
{
    using namespace mpsram;

    core::Variability_study study;
    const tech::Technology& t = study.technology();
    const auto cell = sram::Cell_electrical::n10(t.feol);

    std::cout << "Extension: write-time penalty (twp) vs read-time "
                 "penalty (tdp)\nat the per-option worst-case corners\n\n";

    util::Table table({"option", "array", "tw nominal", "twp", "tdp (read)"});

    for (int n : {16, 64}) {
        sram::Array_config cfg = study.options().array;
        cfg.word_lines = n;

        const geom::Wire_array nominal =
            study.decomposed_array(tech::Patterning_option::euv, n);
        const auto wires_nom =
            sram::roll_up_nominal(study.extractor(), nominal, t, cfg);
        sram::Write_netlist wn =
            sram::build_write_netlist(t, cell, wires_nom, cfg);
        const double tw_nom = sram::simulate_write(wn).tw;

        for (const auto option : tech::all_patterning_options) {
            const auto wc = study.worst_case_full(option, n);
            const geom::Wire_array dec = study.decomposed_array(option, n);
            const auto wires = sram::roll_up_bitline(
                study.extractor(), dec, wc.realized, t, cfg);

            sram::Write_netlist net =
                sram::build_write_netlist(t, cell, wires, cfg);
            const double tw = sram::simulate_write(net).tw;
            const double twp = (tw / tw_nom - 1.0) * 100.0;
            const auto read = study.worst_case_read(option, n);

            table.add_row({std::string(tech::to_string(option)),
                           "10x" + std::to_string(n),
                           util::fmt_time(tw_nom, 2),
                           util::fmt_fixed(twp, 2) + "%",
                           util::fmt_fixed(read.tdp_percent, 2) + "%"});
        }
    }

    std::cout << table.render() << '\n'
              << "Expected: the write penalty follows the same option\n"
                 "ordering as the read (LE3 worst) but is diluted by the\n"
                 "strong, array-scaled write driver.\n";
    return 0;
}
