// Reproduces Fig. 4: nominal td and worst-case variability-induced td
// penalty (tdp) versus array size, from full SPICE simulation.
//
// The paper plots, for each array size {16, 64, 256, 1024} word lines:
//   * the nominal (no patterning variability) td, and
//   * the worst-case tdp for each option: LE3 up to ~20%, SADP and EUV
//     below ~3%, with a non-monotonic trend (tdp first rises then falls
//     with n; EUV goes negative at 10x1024).
//
// Output: one console table plus a CSV (fig4_worst_case_td.csv) with the
// series for external plotting.
//
// Runs on the calibrated adaptive-LTE engine (the production default,
// within 0.5% of fixed stepping on every row); pass --reference to pin the
// fixed-step oracle.
#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "core/session.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv)
{
    using namespace mpsram;

    // Env-aware default (MPSRAM_SIM_ACCURACY), same contract as the
    // Study_options policies; --reference pins the oracle explicitly.
    sram::Sim_accuracy accuracy = sram::default_sim_accuracy();
    if (argc > 1) {
        if (std::strcmp(argv[1], "--reference") != 0) {
            std::cerr << "usage: bench_fig4_worst_case_td [--reference]\n";
            return 2;
        }
        accuracy = sram::Sim_accuracy::reference;
    }
    core::Study_session session;
    constexpr int sizes[] = {16, 64, 256, 1024};

    std::cout << "Fig. 4: worst case wire variability impact on td ("
              << sram::to_string(accuracy) << " engine)\n\n";

    util::Table table({"Array size", "td nominal", "tdp LELELE", "tdp SADP",
                       "tdp EUV"});
    std::ofstream csv_file("fig4_worst_case_td.csv");
    util::Csv_writer csv(csv_file);
    csv.write_header({"word_lines", "td_nominal_s", "tdp_le3_pct",
                      "tdp_sadp_pct", "tdp_euv_pct"});

    // One query per option: Metric::read_td over the word-line axis, the
    // per-word-line transients fanned over all cores, bitwise identical
    // to the serial loop they replace.
    std::vector<core::Read_row> rows[3];
    for (int oi = 0; oi < 3; ++oi) {
        rows[oi] =
            session
                .run(core::Query(core::Metric::read_td)
                         .over_word_lines(tech::all_patterning_options[oi],
                                          sizes)
                         .with_accuracy(accuracy)
                         .on(core::Runner_options::parallel()))
                .column<core::Read_row>();
    }

    for (std::size_t si = 0; si < std::size(sizes); ++si) {
        const int n = sizes[si];
        const double td_nominal = rows[0][si].td_nominal;
        table.add_row({"10x" + std::to_string(n),
                       util::fmt_time(td_nominal, 2),
                       util::fmt_fixed(rows[0][si].tdp_percent, 2) + "%",
                       util::fmt_fixed(rows[1][si].tdp_percent, 2) + "%",
                       util::fmt_fixed(rows[2][si].tdp_percent, 2) + "%"});
        csv.write_row({static_cast<double>(n), td_nominal,
                       rows[0][si].tdp_percent, rows[1][si].tdp_percent,
                       rows[2][si].tdp_percent});
    }

    std::cout << table.render() << '\n'
              << "Paper reference: LE3 17.3/20.0/20.6/18.3%; SADP\n"
                 "2.1/1.5/1.7/2.3%; EUV 2.6/2.4/1.4/-1.0%.\n"
                 "CSV written to fig4_worst_case_td.csv\n";
    return 0;
}
