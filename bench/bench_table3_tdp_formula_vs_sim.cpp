// Reproduces Table III: worst-case read-time penalty (tdp, %), analytical
// formula versus SPICE simulation, for each patterning option and array
// size.
//
// Paper reference (%):
//              10x16  10x64  10x256  10x1024
//   sim LE3    17.33  20.01  20.60   18.29
//   sim SADP    2.07   1.49   1.65    2.27
//   sim EUV     2.58   2.42   1.42   -1.02
//   fml LE3    18.37  20.43  20.49   18.84
//   fml SADP    1.88   1.62   0.88   -4.00
//   fml EUV     2.20   2.15   1.66   -1.47
//
// Headline behaviours to reproduce: the formula tracks LE3/EUV well but
// diverges from the simulation for SADP at n > 64, where the VSS-rail
// resistance increase (anti-correlated with Rbl under SADP) keeps the
// simulated penalty positive while the formula goes negative.
// Runs on the calibrated adaptive-LTE engine (the production default);
// pass --reference to pin the fixed-step oracle.
#include <cstring>
#include <iostream>
#include <vector>

#include "core/session.h"
#include "util/table.h"

int main(int argc, char** argv)
{
    using namespace mpsram;

    // Env-aware default (MPSRAM_SIM_ACCURACY), same contract as the
    // Study_options policies; --reference pins the oracle explicitly.
    sram::Sim_accuracy accuracy = sram::default_sim_accuracy();
    if (argc > 1) {
        if (std::strcmp(argv[1], "--reference") != 0) {
            std::cerr
                << "usage: bench_table3_tdp_formula_vs_sim [--reference]\n";
            return 2;
        }
        accuracy = sram::Sim_accuracy::reference;
    }
    core::Study_session session;

    constexpr int sizes[] = {16, 64, 256, 1024};
    const double paper_sim[3][4] = {{17.33, 20.01, 20.60, 18.29},
                                    {2.07, 1.49, 1.65, 2.27},
                                    {2.58, 2.42, 1.42, -1.02}};
    const double paper_formula[3][4] = {{18.37, 20.43, 20.49, 18.84},
                                        {1.88, 1.62, 0.88, -4.00},
                                        {2.20, 2.15, 1.66, -1.47}};

    std::cout << "Table III: formula versus simulation tdp values (%) using\n"
                 "the worst case variability\n\n";

    util::Table table({"Method", "Array size", "LELELE", "SADP", "EUV",
                       "paper LELELE", "paper SADP", "paper EUV"});

    // Every (option, size) cell on one query; the memoized corner search
    // means each option's worst case is enumerated exactly once.
    core::Query query(core::Metric::worst_case_tdp);
    for (int si = 0; si < 4; ++si) {
        for (int oi = 0; oi < 3; ++oi) {
            query.with_case({tech::all_patterning_options[oi], sizes[si]});
        }
    }
    const auto rows = session.run(query.with_accuracy(accuracy).on(
        core::Runner_options::parallel()));

    for (int method = 0; method < 2; ++method) {
        for (int si = 0; si < 4; ++si) {
            const int n = sizes[si];
            double ours[3];
            for (int oi = 0; oi < 3; ++oi) {
                const auto& row = rows.as<core::Tdp_row>(
                    static_cast<std::size_t>(si * 3 + oi));
                ours[oi] =
                    method == 0 ? row.tdp_simulation : row.tdp_formula;
            }
            const auto& paper = method == 0 ? paper_sim : paper_formula;
            table.add_row({method == 0 ? "Simulation" : "Formula",
                           "10x" + std::to_string(n),
                           util::fmt_fixed(ours[0], 2),
                           util::fmt_fixed(ours[1], 2),
                           util::fmt_fixed(ours[2], 2),
                           util::fmt_fixed(paper[0][si], 2),
                           util::fmt_fixed(paper[1][si], 2),
                           util::fmt_fixed(paper[2][si], 2)});
        }
    }

    std::cout << table.render() << '\n'
              << "Expected shape: LE3 ~15-20% at every size; SADP and EUV\n"
                 "in the low single digits; EUV turning negative at 10x1024;\n"
                 "SADP simulation staying positive at 10x1024 while the\n"
                 "formula (no RVSS term) goes clearly negative.\n";
    return 0;
}
