// Reproduces Table II: nominal read time, analytical formula versus SPICE
// simulation, for the four array sizes of the DOE (10 bit-line pairs x
// {16, 64, 256, 1024} word lines).
//
// Paper reference (seconds):
//   10x16:   sim 5.59e-12,   formula 2.09e-12
//   10x64:   sim 30.07e-12,  formula 7.56e-12
//   10x256:  sim 134.62e-12, formula 30.87e-12
//   10x1024: sim 344.85e-12, formula 144.02e-12
//
// The deviation is expected and explained by the paper: the formula is a
// lumped-RC model of a distributed line driven by a nonlinear device.  The
// reproduction must show the same systematic underestimate.
// Runs on the calibrated adaptive-LTE engine (the production default);
// pass --reference to pin the fixed-step oracle.
#include <cstring>
#include <iostream>
#include <vector>

#include "core/session.h"
#include "util/table.h"

int main(int argc, char** argv)
{
    using namespace mpsram;

    // Env-aware default (MPSRAM_SIM_ACCURACY), same contract as the
    // Study_options policies; --reference pins the oracle explicitly.
    sram::Sim_accuracy accuracy = sram::default_sim_accuracy();
    if (argc > 1) {
        if (std::strcmp(argv[1], "--reference") != 0) {
            std::cerr << "usage: bench_table2_formula_vs_sim [--reference]\n";
            return 2;
        }
        accuracy = sram::Sim_accuracy::reference;
    }
    core::Study_session session;

    struct Paper_row {
        int n;
        double sim;
        double formula;
    };
    constexpr Paper_row paper[] = {
        {16, 5.59e-12, 2.09e-12},
        {64, 30.07e-12, 7.56e-12},
        {256, 134.62e-12, 30.87e-12},
        {1024, 344.85e-12, 144.02e-12},
    };

    std::cout << "Table II: formula versus simulation tdnom values\n\n";
    util::Table table({"Array size", "Simulation", "Formula", "sim/formula",
                       "paper sim", "paper formula", "paper ratio"});

    // All four nominal transients on one query (Metric::nominal_td
    // ignores the option axis), fanned over all cores.
    std::vector<int> sizes;
    for (const Paper_row& ref : paper) sizes.push_back(ref.n);
    const auto rows = session.run(
        core::Query(core::Metric::nominal_td)
            .over_word_lines(tech::Patterning_option::euv, sizes)
            .with_accuracy(accuracy)
            .on(core::Runner_options::parallel()));

    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const Paper_row& ref = paper[i];
        const auto& row = rows.as<core::Nominal_td_row>(i);
        table.add_row({
            "10x" + std::to_string(ref.n),
            util::fmt_sci(row.td_simulation, 2),
            util::fmt_sci(row.td_formula, 2),
            util::fmt_fixed(row.td_simulation / row.td_formula, 2),
            util::fmt_sci(ref.sim, 2),
            util::fmt_sci(ref.formula, 2),
            util::fmt_fixed(ref.sim / ref.formula, 2),
        });
    }

    std::cout << table.render() << '\n'
              << "Expected shape: the lumped formula underestimates the\n"
                 "distributed, nonlinear simulation at every size.\n";
    return 0;
}
