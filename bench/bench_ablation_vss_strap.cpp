// Ablation: VSS-rail return-path modeling versus the SADP sim-vs-formula
// divergence (Table III, Section III-A).
//
// The paper explains the SADP divergence at n > 64 by the VSS-rail
// resistance rising when Rbl falls (mandrel/gap anti-correlation).  How
// much of that shows up in simulation depends on how the rail is returned
// to the grid.  This bench sweeps the return-path model at 10x256 and
// reports the simulated and formula tdp for SADP.
#include <iostream>

#include "core/study.h"
#include "util/table.h"

int main()
{
    using namespace mpsram;

    struct Variant {
        const char* name;
        int strap_interval;
        double sharing;
    };
    const Variant variants[] = {
        {"end-tapped, sharing 8 (default)", 0, 8.0},
        {"end-tapped, sharing 4 (weaker return)", 0, 4.0},
        {"strapped every 32 cells", 32, 8.0},
        {"strapped every 96 cells", 96, 8.0},
    };

    constexpr int n = 256;
    std::cout << "Ablation: VSS return path vs SADP tdp divergence "
                 "(10x" << n << ")\n\n";

    util::Table table({"VSS return model", "SADP tdp sim", "SADP tdp formula",
                       "divergence"});

    for (const Variant& v : variants) {
        core::Study_options so;
        so.netlist.vss_strap_interval = v.strap_interval;
        so.netlist.vss_rail_sharing = v.sharing;
        core::Variability_study study(tech::n10(), so);

        const auto row =
            study.worst_case_tdp(tech::Patterning_option::sadp, n);
        table.add_row({v.name, util::fmt_fixed(row.tdp_simulation, 2) + "%",
                       util::fmt_fixed(row.tdp_formula, 2) + "%",
                       util::fmt_fixed(
                           row.tdp_simulation - row.tdp_formula, 2) +
                           " pts"});
    }

    std::cout << table.render() << '\n'
              << "Expected: the divergence grows as the rail return gets\n"
                 "weaker (more rail resistance in the discharge path) and\n"
                 "collapses when the rail is strapped densely — the formula\n"
                 "has no RVSS term, so dense strapping makes it accurate.\n";
    return 0;
}
