// Reproduces Fig. 5: Monte-Carlo distribution of the read-time penalty for
// an 8 nm 3-sigma LE3 overlay error at array size 10x64, compared with the
// SADP and EUV distributions.
//
// The paper plots the tdp histogram of each option; the headline
// observation is that the LE3 distribution is more than twice as wide as
// SADP's.  This bench prints ASCII histograms plus summary statistics and
// dumps the raw samples to CSV.
#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "core/session.h"
#include "util/csv.h"
#include "util/histogram.h"
#include "util/table.h"

int main()
{
    using namespace mpsram;

    core::Study_session session;
    mc::Distribution_options mo;
    mo.samples = 20000;

    constexpr int n = 64;
    constexpr double ol_8nm = 8e-9;

    std::cout << "Fig. 5: Monte-Carlo tdp distribution, 8 nm 3s OL, n = 64\n\n";

    std::ofstream csv_file("fig5_mc_distribution.csv");
    util::Csv_writer csv(csv_file);
    csv.write_header({"option", "sample_index", "tdp_pct"});

    util::Table table({"Option", "mean tdp", "sigma", "p01", "p99",
                       "paper sigma"});
    const struct {
        tech::Patterning_option option;
        double ol;
        double paper_sigma;
    } cases[] = {
        {tech::Patterning_option::le3, ol_8nm, 0.753},
        {tech::Patterning_option::sadp, -1.0, 0.317},
        {tech::Patterning_option::euv, -1.0, 0.415},
    };

    // All three options as one Metric::mc_tdp query, every hardware
    // thread busy inside each case's sample loop; results are bitwise
    // independent of the thread count.
    mo.runner = core::Runner_options::parallel();
    core::Query query(core::Metric::mc_tdp);
    for (const auto& c : cases) query.with_case({c.option, n, c.ol});

    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<mc::Tdp_distribution> dists =
        session.run(query.with_mc(mo)).column<mc::Tdp_distribution>();
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    for (std::size_t ci = 0; ci < std::size(cases); ++ci) {
        const auto& c = cases[ci];
        const mc::Tdp_distribution& dist = dists[ci];

        table.add_row({std::string(tech::to_string(c.option)),
                       util::fmt_fixed(dist.summary.mean, 3) + "%",
                       util::fmt_fixed(dist.summary.stddev, 3),
                       util::fmt_fixed(dist.summary.p01, 2),
                       util::fmt_fixed(dist.summary.p99, 2),
                       util::fmt_fixed(c.paper_sigma, 3)});

        std::cout << "--- " << tech::to_string(c.option)
                  << " tdp distribution [%] ---\n"
                  << util::Histogram::from_samples(dist.tdp, 25).render(50)
                  << '\n';

        for (std::size_t i = 0; i < dist.tdp.size(); ++i) {
            csv.write_row({std::string(tech::to_string(c.option)),
                           std::to_string(i),
                           util::fmt_fixed(dist.tdp[i], 6)});
        }
    }

    std::cout << table.render() << '\n'
              << "Expected shape: LE3 @ 8 nm OL clearly wider (sigma more\n"
                 "than 2x SADP), with a right tail from spacing crunches;\n"
                 "SADP the narrowest.  CSV: fig5_mc_distribution.csv\n"
              << "Batch of " << dists.size() * mo.samples << " samples in "
              << util::fmt_fixed(wall_s, 2) << " s on all hardware threads\n";
    return 0;
}
