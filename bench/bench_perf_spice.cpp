// SPICE sweep throughput: adaptive-vs-fixed stepping and thread scaling on
// the Fig. 4 workload (LE3 worst-case read, one corner search + two
// transients per word-line count).
//
// For every thread count the sweep runs twice — once under the production
// adaptive-LTE policy (Sim_accuracy::fast) and once under the fixed-step
// reference (Sim_accuracy::reference) — so the wall-time table shows the
// thread speedup and the adaptive speedup side by side.  The parallel rows
// are compared against the serial rows of the same policy (the determinism
// contract: bitwise identical); the two policies are compared against each
// other on the complete Fig. 4 set — every option, n up to 1024,
// regardless of max_word_lines — enforcing the calibration contract (td
// and tdp within 0.5%); and one nominal read at the largest size reports
// the step counters of each engine.  Everything lands in BENCH_spice.json next to BENCH_mc.json
// so the sweep trajectory can be tracked across revisions.
//
// Each measured run constructs a fresh Variability_study so the worst-case
// and nominal-td memos cannot leak work between runs — every run pays the
// full corner searches and transients.
//
//   $ ./bench_perf_spice [max_word_lines]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/study.h"
#include "sram/bitline_model.h"
#include "sram/sim_accuracy.h"
#include "util/numeric.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace mpsram;

double seconds_of(const std::chrono::steady_clock::duration& d)
{
    return std::chrono::duration<double>(d).count();
}

bool bitwise_equal(const std::vector<core::Variability_study::Read_row>& a,
                   const std::vector<core::Variability_study::Read_row>& b)
{
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].td_nominal != b[i].td_nominal ||
            a[i].td_varied != b[i].td_varied ||
            a[i].tdp_percent != b[i].tdp_percent) {
            return false;
        }
    }
    return true;
}

core::Study_options study_opts(sram::Sim_accuracy accuracy)
{
    core::Study_options opts;
    opts.read.accuracy = accuracy;
    return opts;
}

} // namespace

int main(int argc, char** argv)
{
    const int max_n = argc > 1 ? std::atoi(argv[1]) : 128;
    if (max_n < 16) {
        std::cerr << "usage: bench_perf_spice [max_word_lines>=16]\n";
        return 2;
    }

    // Fig. 4's geometric size progression, densified so the plan has more
    // jobs than typical core counts, capped at max_n.
    std::vector<int> sizes;
    for (const int n : {16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512,
                        768, 1024}) {
        if (n <= max_n) sizes.push_back(n);
    }

    const int hw = util::Thread_pool::hardware_threads();
    std::vector<int> thread_counts = {1, 2, 4};
    if (hw > 4) thread_counts.push_back(hw);

    constexpr sram::Sim_accuracy policies[] = {sram::Sim_accuracy::fast,
                                               sram::Sim_accuracy::reference};

    std::cout << "SPICE sweep throughput: LE3 worst-case read (Fig. 4), "
              << sizes.size() << " array sizes up to 10x" << max_n << ", "
              << hw << " hardware threads\n"
              << "Policies: fast = calibrated adaptive-LTE stepping "
                 "(production default), reference = fixed-step oracle\n\n";

    util::Table table({"threads", "policy", "wall [s]", "sims/s",
                       "thread speedup", "adaptive speedup",
                       "bitwise == serial"});

    struct Point {
        int threads = 0;
        double wall_s[2] = {0.0, 0.0};  // indexed like `policies`
        double sims_per_s[2] = {0.0, 0.0};
        bool identical[2] = {true, true};
    };
    std::vector<Point> points;
    std::vector<core::Variability_study::Read_row> serial_rows[2];

    for (const int threads : thread_counts) {
        Point p;
        p.threads = threads;
        for (int pi = 0; pi < 2; ++pi) {
            // Fresh study per run: no memo crosstalk between runs.
            const core::Variability_study study(tech::n10(),
                                                study_opts(policies[pi]));
            const core::Runner_options runner{threads};

            const auto t0 = std::chrono::steady_clock::now();
            const auto rows = study.read_sweep(tech::Patterning_option::le3,
                                               sizes, runner);
            const double wall =
                seconds_of(std::chrono::steady_clock::now() - t0);

            p.wall_s[pi] = wall;
            // Two transients (nominal + worst corner) per word-line count.
            p.sims_per_s[pi] =
                2.0 * static_cast<double>(sizes.size()) / wall;
            if (threads == 1) {
                serial_rows[pi] = rows;
            } else {
                p.identical[pi] = bitwise_equal(rows, serial_rows[pi]);
            }
        }
        points.push_back(p);

        for (int pi = 0; pi < 2; ++pi) {
            table.add_row(
                {std::to_string(threads), sram::to_string(policies[pi]),
                 util::fmt_fixed(p.wall_s[pi], 3),
                 util::fmt_fixed(p.sims_per_s[pi], 2),
                 util::fmt_fixed(points.front().wall_s[pi] / p.wall_s[pi],
                                 2) +
                     "x",
                 util::fmt_fixed(p.wall_s[1] / p.wall_s[0], 2) + "x",
                 p.identical[pi] ? "yes" : "NO"});
        }
    }

    std::cout << table.render() << '\n';

    // --- calibration agreement: fast vs reference ----------------------------
    // Always checked on the complete canonical Fig. 4 set {16, 64, 256,
    // 1024} for every patterning option, independent of max_word_lines:
    // the 10x1024 rows are exactly where the adaptive engine removes the
    // most steps, so the 0.5% budget must be enforced there even when the
    // thread-scaling table above was capped smaller.
    constexpr int fig4_sizes[] = {16, 64, 256, 1024};
    // Determinism makes thread count a free choice here: run the heavy
    // reference sweeps on every core.
    const core::Runner_options agreement_runner{hw};
    double max_td_rel = 0.0;
    double max_tdp_pts = 0.0;
    for (const auto option : tech::all_patterning_options) {
        const core::Variability_study ref_study(
            tech::n10(), study_opts(sram::Sim_accuracy::reference));
        const core::Variability_study fast_study(
            tech::n10(), study_opts(sram::Sim_accuracy::fast));
        const auto ref_rows =
            ref_study.read_sweep(option, fig4_sizes, agreement_runner);
        const auto fast_rows =
            fast_study.read_sweep(option, fig4_sizes, agreement_runner);
        for (std::size_t i = 0; i < std::size(fig4_sizes); ++i) {
            max_td_rel =
                std::max({max_td_rel,
                          util::rel_diff(ref_rows[i].td_nominal,
                                         fast_rows[i].td_nominal),
                          util::rel_diff(ref_rows[i].td_varied,
                                         fast_rows[i].td_varied)});
            max_tdp_pts =
                std::max(max_tdp_pts, std::fabs(ref_rows[i].tdp_percent -
                                                fast_rows[i].tdp_percent));
        }
    }
    const bool agreement_ok = max_td_rel <= 5e-3 && max_tdp_pts <= 0.5;
    std::cout << "Adaptive-vs-reference agreement over the full Fig. 4 set "
                 "(all options, n up to 1024):\n  max |td| deviation "
              << util::fmt_fixed(100.0 * max_td_rel, 4) << "% , max |tdp| "
              << util::fmt_fixed(max_tdp_pts, 4) << " points ("
              << (agreement_ok ? "within" : "OUTSIDE")
              << " the 0.5% calibration budget)\n";

    // --- step counters of one nominal read at the largest size ---------------
    spice::Step_stats steps[2];
    {
        const tech::Technology t = tech::n10();
        const sram::Cell_electrical cell = sram::Cell_electrical::n10(t.feol);
        const extract::Extractor ex(t.metal1);
        sram::Array_config cfg;
        cfg.word_lines = sizes.back();
        cfg.victim_pair = 6;
        const geom::Wire_array arr = sram::build_metal1_array(t, cfg);
        const sram::Bitline_electrical wires =
            sram::roll_up_nominal(ex, arr, t, cfg);
        for (int pi = 0; pi < 2; ++pi) {
            sram::Read_options ropts;
            ropts.accuracy = policies[pi];
            sram::Read_sim_context sim;
            steps[pi] = sim.simulate(t, cell, wires, cfg, sram::Read_timing{},
                                     sram::Netlist_options{}, ropts)
                            .steps;
        }
        std::cout << "\nStep counts, nominal read at 10x" << sizes.back()
                  << ":\n";
        util::Table step_table({"policy", "accepted", "lte rejected",
                                "newton rejected", "total solves"});
        for (int pi = 0; pi < 2; ++pi) {
            step_table.add_row({sram::to_string(policies[pi]),
                                std::to_string(steps[pi].accepted),
                                std::to_string(steps[pi].lte_rejected),
                                std::to_string(steps[pi].newton_rejected),
                                std::to_string(steps[pi].total_attempts())});
        }
        std::cout << step_table.render() << '\n';
    }

    bool all_identical = true;
    for (const Point& p : points) {
        all_identical = all_identical && p.identical[0] && p.identical[1];
    }
    if (!all_identical) {
        std::cout << "ERROR: parallel results diverged from serial — the\n"
                     "determinism contract is broken.\n";
    }
    if (!agreement_ok) {
        std::cout << "ERROR: the adaptive engine left the 0.5% calibration\n"
                     "budget — retune sram::fast_lte_* (see sim_accuracy.h).\n";
    }

    std::ofstream json("BENCH_spice.json");
    json << "{\n"
         << "  \"bench\": \"bench_perf_spice\",\n"
         << "  \"workload\": \"le3_worst_case_read_fig4_sweep\",\n"
         << "  \"array_sizes\": " << sizes.size() << ",\n"
         << "  \"max_word_lines\": " << sizes.back() << ",\n"
         << "  \"hardware_threads\": " << hw << ",\n"
         << "  \"deterministic_across_threads\": "
         << (all_identical ? "true" : "false") << ",\n"
         << "  \"agreement\": {\"max_td_rel\": " << max_td_rel
         << ", \"max_tdp_points\": " << max_tdp_pts
         << ", \"within_budget\": " << (agreement_ok ? "true" : "false")
         << "},\n"
         << "  \"step_counts_nominal_read\": {\n"
         << "    \"word_lines\": " << sizes.back() << ",\n"
         << "    \"fast\": {\"accepted\": " << steps[0].accepted
         << ", \"lte_rejected\": " << steps[0].lte_rejected
         << ", \"newton_rejected\": " << steps[0].newton_rejected << "},\n"
         << "    \"reference\": {\"accepted\": " << steps[1].accepted
         << ", \"lte_rejected\": " << steps[1].lte_rejected
         << ", \"newton_rejected\": " << steps[1].newton_rejected << "}\n"
         << "  },\n"
         << "  \"results\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        json << "    {\"threads\": " << points[i].threads
             << ", \"wall_s_fast\": " << points[i].wall_s[0]
             << ", \"wall_s_reference\": " << points[i].wall_s[1]
             << ", \"sims_per_s_fast\": " << points[i].sims_per_s[0]
             << ", \"sims_per_s_reference\": " << points[i].sims_per_s[1]
             << ", \"adaptive_speedup\": "
             << points[i].wall_s[1] / points[i].wall_s[0] << "}"
             << (i + 1 < points.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "Wrote BENCH_spice.json\n";

    return all_identical && agreement_ok ? 0 : 1;
}
