// SPICE sweep throughput: adaptive-vs-fixed stepping and thread scaling on
// the Fig. 4 workload (LE3 worst-case read, one corner search + two
// transients per word-line count), driven through the query layer.
//
// The workload is one query — Metric::read_td over the Fig. 4 word-line
// progression — executed by the shared bench driver (bench_driver.h) for
// every (threads, policy) grid point on a fresh core::Study_session, so
// the worst-case and nominal-td memos cannot leak work between measured
// runs.  The driver enforces the bitwise parallel-vs-serial determinism
// contract; this bench adds the read calibration gate (adaptive td and
// tdp within 0.5% of the fixed-step reference on the complete canonical
// Fig. 4 set — every option, n up to 1024 — regardless of
// max_word_lines) and the step counters of one nominal read at the
// largest size.  Everything lands in BENCH_spice.json next to
// BENCH_mc.json so the sweep trajectory can be tracked across revisions.
//
//   $ ./bench_perf_spice [max_word_lines]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_driver.h"
#include "core/session.h"
#include "sram/bitline_model.h"
#include "util/thread_pool.h"

int main(int argc, char** argv)
{
    using namespace mpsram;

    const int max_n = argc > 1 ? std::atoi(argv[1]) : 128;
    if (max_n < 16) {
        std::cerr << "usage: bench_perf_spice [max_word_lines>=16]\n";
        return 2;
    }

    // Fig. 4's geometric size progression, densified so the plan has more
    // jobs than typical core counts, capped at max_n.
    std::vector<int> sizes;
    for (const int n : {16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512,
                        768, 1024}) {
        if (n <= max_n) sizes.push_back(n);
    }

    std::cout << "SPICE sweep throughput: LE3 worst-case read (Fig. 4), "
              << sizes.size() << " array sizes up to 10x" << max_n << "\n"
              << "Policies: fast = calibrated adaptive-LTE stepping "
                 "(production default), reference = fixed-step oracle\n\n";

    bench::Scaling_config cfg;
    cfg.bench_name = "bench_perf_spice";
    cfg.workload = "le3_worst_case_read_fig4_sweep";
    cfg.json_path = "BENCH_spice.json";
    // Two transients (nominal + worst corner) per word-line count.
    cfg.sims_per_row = 2.0;
    cfg.run = [&sizes](int threads, sram::Sim_accuracy accuracy) {
        const core::Study_session session;
        return session.run(
            core::Query(core::Metric::read_td)
                .over_word_lines(tech::Patterning_option::le3, sizes)
                .with_accuracy(accuracy)
                .on(core::Runner_options{threads}));
    };
    const bench::Scaling_outcome outcome = bench::run_thread_scaling(cfg);

    // --- calibration agreement: fast vs reference ----------------------------
    // Always checked on the complete canonical Fig. 4 set {16, 64, 256,
    // 1024} for every patterning option, independent of max_word_lines:
    // the 10x1024 rows are exactly where the adaptive engine removes the
    // most steps, so the 0.5% budget must be enforced there even when the
    // thread-scaling table above was capped smaller.
    constexpr int fig4_sizes[] = {16, 64, 256, 1024};
    // Determinism makes thread count a free choice here: run the heavy
    // reference sweeps on every core.
    const core::Runner_options agreement_runner{
        util::Thread_pool::hardware_threads()};
    const bench::Agreement agreement =
        bench::run_option_agreement([&](tech::Patterning_option option) {
            return core::Query(core::Metric::read_td)
                .over_word_lines(option, fig4_sizes)
                .on(agreement_runner);
        });
    std::cout << "Checked over the full Fig. 4 set (all options, n up to "
                 "1024):\n";
    bench::report_agreement(agreement, "td");

    // --- step counters of one nominal read at the largest size ---------------
    spice::Step_stats steps[2];
    bench::measure_nominal_steps<sram::Read_sim_context>(sizes.back(),
                                                         steps);
    std::cout << "\nStep counts, nominal read at 10x" << sizes.back()
              << ":\n";
    bench::print_step_table(steps);

    bench::write_bench_json(cfg, outcome, &agreement, steps, sizes.back());
    return outcome.all_identical && agreement.within_budget() ? 0 : 1;
}
