// Engine performance benchmarks (google-benchmark): the SPICE core.
//
// Tracks the cost of the pieces the study leans on — sparse LU
// factorization on ladder-structured MNA matrices, full read transients at
// several array sizes, and the BE-vs-TRAP integrator trade — so regressions
// in the solver show up before they poison the experiment wall-times.
#include <benchmark/benchmark.h>

#include "core/study.h"
#include "spice/analysis.h"
#include "spice/circuit.h"
#include "sram/netlist_builder.h"
#include "sram/read_sim.h"

namespace {

using namespace mpsram;

/// RC ladder transient: the distilled numerical core of a bit line.
void bm_rc_ladder_transient(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        spice::Circuit c;
        const spice::Node in = c.node("in");
        c.add_voltage_source("Vin", in, spice::ground_node,
                             spice::Waveform::pulse(0.0, 0.7, 10e-12, 5e-12));
        spice::Node prev = in;
        for (int i = 0; i < n; ++i) {
            const spice::Node ni = c.node("n" + std::to_string(i));
            c.add_resistor("R" + std::to_string(i), prev, ni, 10.0);
            c.add_capacitor("C" + std::to_string(i), ni, spice::ground_node,
                            0.05e-15);
            prev = ni;
        }
        spice::Transient_options topts;
        topts.tstop = 200e-12;
        topts.nominal_steps = 400;
        state.ResumeTiming();

        auto result = spice::run_transient(c, {prev}, topts);
        benchmark::DoNotOptimize(result.sample_count());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(bm_rc_ladder_transient)->Arg(64)->Arg(256)->Arg(1024);

/// Full SRAM read simulation at several array sizes.
void bm_sram_read(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    const core::Variability_study study;
    const tech::Technology& t = study.technology();
    const auto cell = sram::Cell_electrical::n10(t.feol);

    sram::Array_config cfg;
    cfg.word_lines = n;
    cfg.victim_pair = 6;
    const geom::Wire_array nominal =
        study.decomposed_array(tech::Patterning_option::euv, n);
    const auto wires =
        sram::roll_up_nominal(study.extractor(), nominal, t, cfg);

    for (auto _ : state) {
        sram::Read_netlist net =
            sram::build_read_netlist(t, cell, wires, cfg);
        sram::Read_options ro;
        ro.nominal_steps = 800;
        const auto r = sram::simulate_read(net, ro);
        benchmark::DoNotOptimize(r.td);
    }
}
BENCHMARK(bm_sram_read)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

/// Integrator comparison on the same read problem.
void bm_integrator(benchmark::State& state)
{
    const bool use_be = state.range(0) == 0;
    const core::Variability_study study;
    const tech::Technology& t = study.technology();
    const auto cell = sram::Cell_electrical::n10(t.feol);

    sram::Array_config cfg;
    cfg.word_lines = 64;
    cfg.victim_pair = 6;
    const geom::Wire_array nominal =
        study.decomposed_array(tech::Patterning_option::euv, 64);
    const auto wires =
        sram::roll_up_nominal(study.extractor(), nominal, t, cfg);

    for (auto _ : state) {
        sram::Read_netlist net =
            sram::build_read_netlist(t, cell, wires, cfg);
        sram::Read_options ro;
        ro.nominal_steps = 800;
        ro.method = use_be ? spice::Integration_method::backward_euler
                           : spice::Integration_method::trapezoidal;
        const auto r = sram::simulate_read(net, ro);
        benchmark::DoNotOptimize(r.td);
    }
}
BENCHMARK(bm_integrator)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
