// SPICE sweep throughput: threads vs wall time on the Fig. 4 workload
// (LE3 worst-case read, one corner search + two transients per word-line
// count).
//
// Prints a thread-scaling table, verifies the determinism contract (the
// parallel sweeps must be bitwise identical to the serial sweep), and
// emits BENCH_spice.json alongside BENCH_mc.json so the sweep wall-time
// trajectory can be tracked across revisions.
//
// Each measured run constructs a fresh Variability_study so the worst-case
// and nominal-td memos cannot leak work between thread counts — every run
// pays the full corner searches and transients.
//
//   $ ./bench_perf_spice [max_word_lines]
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/study.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace mpsram;

double seconds_of(const std::chrono::steady_clock::duration& d)
{
    return std::chrono::duration<double>(d).count();
}

bool bitwise_equal(const std::vector<core::Variability_study::Read_row>& a,
                   const std::vector<core::Variability_study::Read_row>& b)
{
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].td_nominal != b[i].td_nominal ||
            a[i].td_varied != b[i].td_varied ||
            a[i].tdp_percent != b[i].tdp_percent) {
            return false;
        }
    }
    return true;
}

} // namespace

int main(int argc, char** argv)
{
    const int max_n = argc > 1 ? std::atoi(argv[1]) : 128;
    if (max_n < 16) {
        std::cerr << "usage: bench_perf_spice [max_word_lines>=16]\n";
        return 2;
    }

    // Fig. 4's geometric size progression, densified so the plan has more
    // jobs than typical core counts, capped at max_n.
    std::vector<int> sizes;
    for (const int n : {16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512,
                        768, 1024}) {
        if (n <= max_n) sizes.push_back(n);
    }

    const int hw = util::Thread_pool::hardware_threads();
    std::vector<int> thread_counts = {1, 2, 4};
    if (hw > 4) thread_counts.push_back(hw);

    std::cout << "SPICE sweep throughput: LE3 worst-case read (Fig. 4), "
              << sizes.size() << " array sizes up to 10x" << max_n << ", "
              << hw << " hardware threads\n\n";

    util::Table table({"threads", "wall [s]", "sims/s", "speedup",
                       "bitwise == serial"});

    struct Point {
        int threads = 0;
        double wall_s = 0.0;
        double sims_per_s = 0.0;
        bool identical = true;
    };
    std::vector<Point> points;
    std::vector<core::Variability_study::Read_row> serial_rows;

    for (const int threads : thread_counts) {
        // Fresh study per run: no memo crosstalk between thread counts.
        const core::Variability_study study;
        const core::Runner_options runner{threads};

        const auto t0 = std::chrono::steady_clock::now();
        const auto rows =
            study.read_sweep(tech::Patterning_option::le3, sizes, runner);
        const double wall = seconds_of(std::chrono::steady_clock::now() - t0);

        Point p;
        p.threads = threads;
        p.wall_s = wall;
        // Two transients (nominal + worst corner) per word-line count.
        p.sims_per_s = 2.0 * static_cast<double>(sizes.size()) / wall;
        if (threads == 1) {
            serial_rows = rows;
        } else {
            p.identical = bitwise_equal(rows, serial_rows);
        }
        points.push_back(p);

        table.add_row({std::to_string(threads),
                       util::fmt_fixed(wall, 3),
                       util::fmt_fixed(p.sims_per_s, 2),
                       util::fmt_fixed(points.front().wall_s / wall, 2) + "x",
                       p.identical ? "yes" : "NO"});
    }

    std::cout << table.render() << '\n';

    bool all_identical = true;
    for (const Point& p : points) all_identical = all_identical && p.identical;
    if (!all_identical) {
        std::cout << "ERROR: parallel results diverged from serial — the\n"
                     "determinism contract is broken.\n";
    }

    std::ofstream json("BENCH_spice.json");
    json << "{\n"
         << "  \"bench\": \"bench_perf_spice\",\n"
         << "  \"workload\": \"le3_worst_case_read_fig4_sweep\",\n"
         << "  \"array_sizes\": " << sizes.size() << ",\n"
         << "  \"max_word_lines\": " << sizes.back() << ",\n"
         << "  \"hardware_threads\": " << hw << ",\n"
         << "  \"deterministic_across_threads\": "
         << (all_identical ? "true" : "false") << ",\n"
         << "  \"results\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        json << "    {\"threads\": " << points[i].threads
             << ", \"wall_s\": " << points[i].wall_s
             << ", \"sims_per_s\": " << points[i].sims_per_s << "}"
             << (i + 1 < points.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "Wrote BENCH_spice.json\n";

    return all_identical ? 0 : 1;
}
