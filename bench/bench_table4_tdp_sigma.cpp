// Reproduces Table IV: standard deviation of the Monte-Carlo tdp
// distribution per patterning option at 10x64, with the LE3 overlay budget
// swept over the paper's 3-8 nm range.
//
// Paper reference (sigma of tdp, %):
//   LELELE 3 nm OL: 0.414     LELELE 5 nm OL: 0.454
//   LELELE 7 nm OL: 0.552     LELELE 8 nm OL: 0.753
//   SADP: 0.317               EUV: 0.415
//
// Headline: OL control decides LE3's spread; at a 3 nm budget LE3 matches
// SADP/EUV, at 8 nm it is worst by >2x.  An extended sweep (continuous OL
// axis) is appended as the ablation view.
#include <iostream>

#include "core/study.h"
#include "util/table.h"

int main()
{
    using namespace mpsram;

    core::Variability_study study;
    mc::Distribution_options mo;
    mo.samples = 20000;
    constexpr int n = 64;

    std::cout << "Table IV: patterning options & tdp sigma values (10x64)\n\n";

    util::Table table({"Patterning option", "Std. deviation (sigma)",
                       "paper sigma"});

    const struct {
        const char* label;
        tech::Patterning_option option;
        double ol;
        double paper;
    } rows[] = {
        {"LELELE 3nm OL", tech::Patterning_option::le3, 3e-9, 0.414},
        {"LELELE 5nm OL", tech::Patterning_option::le3, 5e-9, 0.454},
        {"LELELE 7nm OL", tech::Patterning_option::le3, 7e-9, 0.552},
        {"LELELE 8nm OL", tech::Patterning_option::le3, 8e-9, 0.753},
        {"SADP", tech::Patterning_option::sadp, -1.0, 0.317},
        {"EUV", tech::Patterning_option::euv, -1.0, 0.415},
    };

    double sigma_le3_8 = 0.0;
    double sigma_sadp = 0.0;
    for (const auto& r : rows) {
        const auto dist = study.mc_tdp(r.option, n, mo, r.ol);
        if (r.ol == 8e-9) sigma_le3_8 = dist.summary.stddev;
        if (r.option == tech::Patterning_option::sadp) {
            sigma_sadp = dist.summary.stddev;
        }
        table.add_row({r.label, util::fmt_fixed(dist.summary.stddev, 3),
                       util::fmt_fixed(r.paper, 3)});
    }
    std::cout << table.render() << '\n';
    std::cout << "LE3 @ 8 nm OL vs SADP sigma ratio: "
              << util::fmt_fixed(sigma_le3_8 / sigma_sadp, 2)
              << "x (paper: 2.4x; 'as much as double')\n\n";

    // Extended continuous OL sweep (ablation view of the same experiment).
    std::cout << "Extended OL sweep (LE3, 10x64):\n";
    util::Table sweep({"3s OL [nm]", "sigma(tdp)"});
    for (double ol_nm = 2.0; ol_nm <= 9.0; ol_nm += 1.0) {
        const auto dist = study.mc_tdp(tech::Patterning_option::le3, n, mo,
                                       ol_nm * 1e-9);
        sweep.add_row({util::fmt_fixed(ol_nm, 0),
                       util::fmt_fixed(dist.summary.stddev, 3)});
    }
    std::cout << sweep.render();
    return 0;
}
