// Query-service serving overhead: the daemon's handle_line path (parse,
// dispatch, execute, re-serialize — core/service.h) versus a direct
// in-process Study_session::run of the same query, plus the warm-memo
// serve latency that a long-lived daemon amortizes repeat queries down
// to.
//
// The thread-scaling grid runs the whole workload *through the service
// seam*: every (threads, policy) point constructs a fresh uncached
// session and Query_service, submits the request line, and decodes the
// response table — so the driver's bitwise parallel-vs-serial check
// covers the daemon-served path end to end, not just the engine under
// it.  On top of that the bench measures, on one warm service:
//
//   - in_process_s:  session.run(query) directly,
//   - cold_serve_s:  first handle_line (executes + memoizes),
//   - warm_serve_s:  repeat handle_line (memo hit, no simulation),
//
// and checks the cold served "result" bytes equal the in-process
// json_of_result_table dump bitwise — the identity the CI service job
// enforces over a real socket.  Everything lands in BENCH_service.json.
//
//   $ ./bench_perf_service [max_word_lines]
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_driver.h"
#include "core/serialize.h"
#include "core/service.h"
#include "core/session.h"
#include "util/json.h"

namespace {

using namespace mpsram;

core::Study_options uncached()
{
    core::Study_options opts;
    opts.cache.mode = core::Cache_mode::off;
    return opts;
}

/// `{"v":1,"op":"query","id":...,"query":...}` for one query.
std::string query_line(const core::Query& query, std::uint64_t id)
{
    util::Json request;
    request.set("v", core::service_protocol_version);
    request.set("op", "query");
    request.set("id", id);
    request.set("query", core::json_of_query(query));
    return request.dump();
}

/// Serve one line and return the decoded response, throwing on an error
/// envelope so a misconfigured bench fails loudly instead of comparing
/// garbage tables.
util::Json serve(core::Query_service& service, const std::string& line)
{
    util::Json response = util::Json::parse(service.handle_line(line));
    if (!response.at("ok").as_bool())
        throw std::runtime_error("service error: " +
                                 response.at("error").dump());
    return response;
}

} // namespace

int main(int argc, char** argv)
{
    using namespace mpsram;

    const int max_n = argc > 1 ? std::atoi(argv[1]) : 64;
    if (max_n < 16) {
        std::cerr << "usage: bench_perf_service [max_word_lines>=16]\n";
        return 2;
    }

    std::vector<int> sizes;
    for (const int n : {16, 24, 32, 48, 64, 96, 128}) {
        if (n <= max_n) sizes.push_back(n);
    }

    std::cout << "Query-service overhead: EUV read_td over "
              << sizes.size() << " array sizes up to 10x" << max_n
              << ", served through Query_service::handle_line\n\n";

    // --- thread scaling through the service seam -----------------------------
    bench::Scaling_config cfg;
    cfg.bench_name = "bench_perf_service";
    cfg.workload = "euv_read_td_served_via_handle_line";
    cfg.json_path = "BENCH_service.json";
    cfg.sims_per_row = 2.0;
    cfg.run = [&sizes](int threads, sram::Sim_accuracy accuracy) {
        const core::Study_session session(tech::n10(), uncached());
        core::Service_options opts;
        opts.runner = core::Runner_options{threads};
        core::Query_service service(session, opts);
        const core::Query query =
            core::Query(core::Metric::read_td)
                .over_word_lines(tech::Patterning_option::euv, sizes)
                .with_accuracy(accuracy);
        const util::Json response = serve(service, query_line(query, 1));
        return core::result_table_of_json(response.at("result"));
    };
    const bench::Scaling_outcome outcome = bench::run_thread_scaling(cfg);

    // --- serve overhead: fresh session per leg --------------------------------
    // The in-process baseline and the served leg each get their own cold
    // session so neither inherits the other's nominal memos; the bitwise
    // identity across the two sessions is exactly the determinism
    // contract the daemon relies on.
    const core::Query query =
        core::Query(core::Metric::read_td)
            .over_word_lines(tech::Patterning_option::euv, sizes);

    using clock = std::chrono::steady_clock;

    const core::Study_session direct_session(tech::n10(), uncached());
    auto t0 = clock::now();
    const core::Result_table direct = direct_session.run(query);
    auto t1 = clock::now();
    const double in_process_s = bench::seconds_of(t1 - t0);

    const core::Study_session session(tech::n10(), uncached());
    core::Query_service service(session, core::Service_options{});

    const std::string line = query_line(query, 2);
    t0 = clock::now();
    const util::Json cold = serve(service, line);
    t1 = clock::now();
    const double cold_serve_s = bench::seconds_of(t1 - t0);

    const bool identical = cold.at("result").dump() ==
                           core::json_of_result_table(direct).dump();

    // Warm serves are memo hits: amortize the parse + dump cost over
    // enough repeats for a stable number.
    constexpr std::uint64_t warm_repeats = 200;
    t0 = clock::now();
    for (std::uint64_t i = 0; i < warm_repeats; ++i) serve(service, line);
    t1 = clock::now();
    const double warm_serve_s =
        bench::seconds_of(t1 - t0) / warm_repeats;
    const bool warm_hit =
        service.stats().memo_hits == warm_repeats &&
        service.stats().queries == warm_repeats + 1;

    std::cout << "\nServe overhead (one warm service, "
              << sizes.size() << " rows):\n"
              << "  in-process run        " << in_process_s << " s\n"
              << "  cold serve            " << cold_serve_s << " s\n"
              << "  warm serve (memo)     " << warm_serve_s << " s\n"
              << "  served == in-process  "
              << (identical ? "bitwise identical" : "MISMATCH") << "\n"
              << "  warm = memo hits      "
              << (warm_hit ? "yes" : "NO") << "\n";

    const std::vector<std::string> extra = {
        "\"service\": {\"in_process_s\": " + std::to_string(in_process_s) +
        ", \"cold_serve_s\": " + std::to_string(cold_serve_s) +
        ", \"warm_serve_s\": " + std::to_string(warm_serve_s) +
        ", \"warm_repeats\": " + std::to_string(warm_repeats) +
        ", \"identical\": " + (identical ? "true" : "false") +
        ", \"warm_memo_hits\": " + (warm_hit ? "true" : "false") + "},"};
    bench::write_bench_json(cfg, outcome, nullptr, nullptr, sizes.back(),
                            extra);
    return outcome.all_identical && identical && warm_hit ? 0 : 1;
}
