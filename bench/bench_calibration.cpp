// Extraction-model calibration against the paper's Table I.
//
// Default mode: report the residuals of the frozen default model constants
// against the six published worst-case sensitivities (Cbl% and Rbl% for
// LE3 / SADP / EUV).  With --search, run a random search + local refine
// over the model constants and print the best-fitting set (this is how the
// defaults in tech::n10() and extract::Extraction_options were chosen).
#include <cmath>
#include <cstring>
#include <iostream>
#include <random>

#include "extract/extractor.h"
#include "mc/worst_case.h"
#include "pattern/engine.h"
#include "sram/layout.h"
#include "tech/technology.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace mpsram;

struct Targets {
    double cbl[3] = {61.56, 4.01, 6.65};    // LE3, SADP, EUV [%]
    double rbl[3] = {-10.36, -18.19, -10.36};
};

struct Knobs {
    double thickness;
    double taper;
    double below;
    double above;
    double k_fringe_ground;
    double shield_power;
    double k_fringe_coupling;
};

struct Eval {
    double cbl[3];
    double rbl[3];
    double error;
};

Eval evaluate(const Knobs& k)
{
    tech::Technology t = tech::n10();
    t.metal1.thickness = k.thickness;
    t.metal1.taper_angle = k.taper;
    t.metal1.below_plane_dist = k.below;
    t.metal1.above_plane_dist = k.above;

    extract::Extraction_options opts;
    opts.k_fringe_ground = k.k_fringe_ground;
    opts.fringe_shield_power = k.shield_power;
    opts.k_fringe_coupling = k.k_fringe_coupling;

    const extract::Extractor extractor(t.metal1, opts);

    sram::Array_config cfg;
    cfg.word_lines = 64;
    cfg.victim_pair = 6;  // mask-A bit line (see core::Variability_study)

    const Targets targets;
    Eval e{};
    e.error = 0.0;

    const tech::Patterning_option options[3] = {
        tech::Patterning_option::le3, tech::Patterning_option::sadp,
        tech::Patterning_option::euv};

    for (int i = 0; i < 3; ++i) {
        const auto engine = pattern::make_engine(options[i], t);
        const geom::Wire_array nominal =
            engine->decompose(sram::build_metal1_array(t, cfg));
        const sram::Victim_wires v = sram::find_victim_wires(nominal, cfg);
        const mc::Worst_case_result wc = mc::find_worst_case(
            *engine, extractor, nominal, v.bl, v.vss);
        e.cbl[i] = wc.variation.c_percent();
        e.rbl[i] = wc.variation.r_percent();

        // Weighted squared residuals; LE3's Cbl is an order of magnitude
        // larger, so weight it down to percentage-of-target scale.
        const double wc_weight = (i == 0) ? 0.15 : 1.0;
        e.error += wc_weight * std::pow(e.cbl[i] - targets.cbl[i], 2);
        e.error += std::pow(e.rbl[i] - targets.rbl[i], 2);
    }
    return e;
}

Knobs defaults()
{
    const tech::Technology t = tech::n10();
    const extract::Extraction_options o;
    return Knobs{t.metal1.thickness,      t.metal1.taper_angle,
                 t.metal1.below_plane_dist, t.metal1.above_plane_dist,
                 o.k_fringe_ground,       o.fringe_shield_power,
                 o.k_fringe_coupling};
}

void report(const Knobs& k)
{
    using units::nm;
    const Eval e = evaluate(k);
    const Targets targets;

    util::Table table({"Option", "Cbl model", "Cbl paper", "Rbl model",
                       "Rbl paper"});
    const char* names[3] = {"LELELE", "SADP", "EUV"};
    for (int i = 0; i < 3; ++i) {
        table.add_row({names[i], util::fmt_percent(e.cbl[i] / 100.0, 2),
                       util::fmt_percent(targets.cbl[i] / 100.0, 2),
                       util::fmt_percent(e.rbl[i] / 100.0, 2),
                       util::fmt_percent(targets.rbl[i] / 100.0, 2)});
    }
    std::cout << table.render();
    std::cout << "\nmodel constants: thickness=" << k.thickness / nm
              << "nm taper=" << k.taper << " below=" << k.below / nm
              << "nm above=" << k.above / nm
              << "nm k_fg=" << k.k_fringe_ground
              << " p=" << k.shield_power
              << " k_fc=" << k.k_fringe_coupling
              << "\nweighted squared error: " << e.error << "\n";
}

void search()
{
    using units::nm;
    std::mt19937_64 rng(42);
    auto uni = [&](double lo, double hi) {
        return std::uniform_real_distribution<double>(lo, hi)(rng);
    };

    Knobs best = defaults();
    double best_err = evaluate(best).error;

    for (int it = 0; it < 4000; ++it) {
        Knobs k{uni(20 * nm, 36 * nm), uni(0.02, 0.10),
                uni(22 * nm, 90 * nm), uni(22 * nm, 90 * nm),
                uni(0.2, 3.0),         uni(0.5, 2.2),
                uni(0.1, 1.6)};
        const double err = evaluate(k).error;
        if (err < best_err) {
            best_err = err;
            best = k;
            std::cout << "iter " << it << " err " << err << "\n";
        }
    }

    // Local refine: coordinate shrink steps.
    for (int round = 0; round < 200; ++round) {
        bool improved = false;
        auto tweak = [&](double Knobs::*field, double scale) {
            for (double f : {1.0 + scale, 1.0 - scale}) {
                Knobs k = best;
                k.*field *= f;
                const double err = evaluate(k).error;
                if (err < best_err) {
                    best_err = err;
                    best = k;
                    improved = true;
                }
            }
        };
        const double s = 0.03;
        tweak(&Knobs::thickness, s);
        tweak(&Knobs::taper, s);
        tweak(&Knobs::below, s);
        tweak(&Knobs::above, s);
        tweak(&Knobs::k_fringe_ground, s);
        tweak(&Knobs::shield_power, s);
        tweak(&Knobs::k_fringe_coupling, s);
        if (!improved) break;
    }

    std::cout << "\n=== best ===\n";
    report(best);
}

} // namespace

int main(int argc, char** argv)
{
    std::cout << "Extraction-model calibration vs Table I\n\n";
    if (argc > 1 && std::strcmp(argv[1], "--search") == 0) {
        search();
    } else {
        report(defaults());
    }
    return 0;
}
